package core

import (
	"fmt"

	"trainbox/internal/arch"
	"trainbox/internal/collective"
	"trainbox/internal/hostres"
	"trainbox/internal/pcie"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

// LatencyBreakdown is the per-global-batch stage timing behind Figures 3
// and 9: how long each pipeline stage would take for one global batch,
// before overlapping. The paper plots these as shares of the total.
type LatencyBreakdown struct {
	// Data preparation components (Figure 9's stacking).
	DataTransfer float64
	Formatting   float64
	Augmentation float64
	// The overlapped "others".
	ModelCompute float64
	ModelSync    float64
}

// PrepTotal returns the data-preparation time (transfer + formatting +
// augmentation).
func (b LatencyBreakdown) PrepTotal() float64 {
	return b.DataTransfer + b.Formatting + b.Augmentation
}

// OthersTotal returns the computation + synchronization time.
func (b LatencyBreakdown) OthersTotal() float64 {
	return b.ModelCompute + b.ModelSync
}

// Total returns the sum of all components.
func (b LatencyBreakdown) Total() float64 { return b.PrepTotal() + b.OthersTotal() }

// PrepShare returns preparation's share of the total — the quantity
// behind "data preparation accounts for 98.1% of the total latency".
func (b LatencyBreakdown) PrepShare() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.PrepTotal() / t
}

// DecomposeBaseline computes the Figure 9 decomposition for the baseline
// (CPU-prep, host-staged) architecture at n accelerators: one global
// batch (n × per-accelerator batch) prepared by the full host against
// each stage's own resource.
func DecomposeBaseline(w workload.Workload, n int) (LatencyBreakdown, error) {
	return decompose(w, n, float64(accelRateOf(w)), hostres.DGX2(),
		float64(arch.RCCapacity(pcie.Gen3)), collective.DefaultRingModel())
}

// SyncStyle selects the model-synchronization scheme for Figure 3's
// optimization ladder.
type SyncStyle int

// Synchronization schemes.
const (
	// SyncCentral is naive gather+broadcast over the interconnect.
	SyncCentral SyncStyle = iota
	// SyncRing is chunked ring all-reduce.
	SyncRing
)

// Fig3Config is one bar of Figure 3's ladder: an accelerator speed, an
// interconnect for synchronization, and a synchronization scheme.
type Fig3Config struct {
	Name string
	// NumAccels and AccelRate define the compute platform.
	NumAccels int
	AccelRate units.SamplesPerSec
	// SyncBandwidth is the interconnect the gradients cross.
	SyncBandwidth units.BytesPerSec
	// Style selects the synchronization algorithm.
	Style SyncStyle
}

// Fig3Ladder returns the paper's four configurations: Current (8 Titan
// XP GPUs on PCIe Gen3), +HW accelerator (256 TPU v3-8), +ICN
// (NVLink-speed interconnect), +Synch optimization (ring-based
// reduction). Titan XP ResNet-50 throughput is ≈230 samples/s.
func Fig3Ladder() []Fig3Config {
	nvlink := collective.DefaultRingModel().LinkBandwidth
	pcieBW := pcie.Gen3.LinkBandwidth()
	return []Fig3Config{
		{Name: "Current", NumAccels: 8, AccelRate: 230, SyncBandwidth: pcieBW, Style: SyncCentral},
		{Name: "+HW accelerator", NumAccels: 256, AccelRate: 0, SyncBandwidth: pcieBW, Style: SyncCentral},
		{Name: "+ICN", NumAccels: 256, AccelRate: 0, SyncBandwidth: nvlink, Style: SyncCentral},
		{Name: "+Synch. Optimization", NumAccels: 256, AccelRate: 0, SyncBandwidth: nvlink, Style: SyncRing},
	}
}

// DecomposeFig3 computes the latency decomposition of one Figure 3
// configuration for the workload (the paper uses ResNet-50). A zero
// AccelRate in the config means "use the workload's Table I rate".
func DecomposeFig3(w workload.Workload, cfg Fig3Config) (LatencyBreakdown, error) {
	if cfg.NumAccels <= 0 {
		return LatencyBreakdown{}, fmt.Errorf("core: fig3 config needs accelerators")
	}
	rate := float64(cfg.AccelRate)
	if rate == 0 {
		rate = float64(w.AccelRate)
	}
	var b LatencyBreakdown
	host := hostres.DGX2()
	g := float64(cfg.NumAccels * w.BatchSize) // global batch samples

	b.Formatting = g * w.Prep.CPUSeconds[workload.OpFormat] / float64(host.Cores)
	b.Augmentation = g * w.Prep.CPUSeconds[workload.OpAugment] / float64(host.Cores)
	b.DataTransfer = g * float64(w.Prep.StoredBytes+w.Prep.TensorBytes) / float64(arch.RCCapacity(pcie.Gen3))
	b.ModelCompute = float64(w.BatchSize) / rate

	switch cfg.Style {
	case SyncRing:
		ring := collective.DefaultRingModel()
		ring.LinkBandwidth = cfg.SyncBandwidth
		b.ModelSync = ring.Latency(cfg.NumAccels, w.ModelBytes)
	default:
		central := collective.CentralModel{LinkBandwidth: cfg.SyncBandwidth}
		b.ModelSync = central.Latency(cfg.NumAccels, w.ModelBytes)
	}
	return b, nil
}

// decompose computes the baseline stage times for one global batch.
func decompose(w workload.Workload, n int, accelRate float64, host hostres.HostSpec,
	rcCap float64, ring collective.RingModel) (LatencyBreakdown, error) {
	if n <= 0 {
		return LatencyBreakdown{}, fmt.Errorf("core: need at least one accelerator, got %d", n)
	}
	var b LatencyBreakdown
	g := float64(n * w.BatchSize)
	// CPU stages run across all host cores; the transfer stage is bounded
	// by the busier of the root complex and the host DRAM path.
	b.Formatting = g * w.Prep.CPUSeconds[workload.OpFormat] / float64(host.Cores)
	b.Augmentation = g * w.Prep.CPUSeconds[workload.OpAugment] / float64(host.Cores)
	transferRC := g * float64(w.Prep.StoredBytes+w.Prep.TensorBytes) / rcCap
	transferMem := g * float64(w.Prep.MemoryBytes[workload.OpSSDRead]+w.Prep.MemoryBytes[workload.OpLoad]) /
		float64(host.MemoryBandwidth)
	b.DataTransfer = transferRC
	if transferMem > transferRC {
		b.DataTransfer = transferMem
	}
	b.ModelCompute = float64(w.BatchSize) / accelRate
	b.ModelSync = ring.Latency(n, w.ModelBytes)
	return b, nil
}

func accelRateOf(w workload.Workload) units.SamplesPerSec { return w.AccelRate }
