package core

import (
	"fmt"

	"trainbox/internal/arch"
	"trainbox/internal/pcie"
	"trainbox/internal/sim"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

// BoxTransferResult is the measured behaviour of the in-box transfer
// replay.
type BoxTransferResult struct {
	// Throughput is the measured sample rate of one train box's fabric.
	Throughput units.SamplesPerSec
	// Elapsed is the simulated makespan.
	Elapsed float64
	// Transfers counts completed DMA operations.
	Transfers int
}

// SimulateBoxTransfers replays one train box's per-sample DMAs through
// the fluid-flow PCIe network simulator: chunks of samples move
// SSD→FPGA (stored bytes) and FPGA→accelerator (tensor bytes) as
// concurrent transfers on the real topology, with max-min fair link
// sharing. It validates the analytical per-link accounting (LinkLoad)
// with actual contention dynamics rather than static sums: the measured
// steady-state rate must match the analytical in-box fabric limit.
//
// FPGA compute and SSD read-bandwidth limits are excluded on purpose —
// this replay isolates the fabric, the one component whose sharing
// behaviour is nontrivial.
func SimulateBoxTransfers(sys *arch.System, w workload.Workload, chunks, chunkSamples int) (BoxTransferResult, error) {
	if !sys.Config.Kind.Clustered() || len(sys.Boxes) == 0 {
		return BoxTransferResult{}, fmt.Errorf("core: box replay needs a clustered system")
	}
	if chunks <= 0 || chunkSamples <= 0 {
		return BoxTransferResult{}, fmt.Errorf("core: invalid replay size %d×%d", chunks, chunkSamples)
	}
	box := sys.Boxes[0]
	eng := sim.NewEngine()
	net := pcie.NewNetwork(eng, sys.Topo)

	stored := units.Bytes(float64(w.Prep.StoredBytes) * float64(chunkSamples))
	tensor := units.Bytes(float64(w.Prep.TensorBytes) * float64(chunkSamples))

	// Each chunk: one SSD→FPGA transfer then one FPGA→accel transfer,
	// round-robin across the box's devices, with bounded concurrency to
	// keep the fabric saturated. The initial window is staggered: equal-
	// size transfers released simultaneously phase-lock into a convoy
	// (all chunks in the stored leg together, then all in the tensor leg
	// together, leaving each link idle half the time), which is an
	// artifact of synchronized release, not of the fabric — production
	// pipelines start samples as they arrive.
	const inFlight = 32
	launched, finished := 0, 0
	transfers := 0
	var finish float64
	soloStored := float64(stored) / float64(sys.Topo.LinkOf(box.SSDs[0]).Bandwidth)
	var launch func()
	launch = func() {
		for launched < chunks && launched-finished < inFlight {
			c := launched
			launched++
			ssd := box.SSDs[c%len(box.SSDs)]
			fp := box.FPGAs[c%len(box.FPGAs)]
			acc := box.Accels[c%len(box.Accels)]
			start := func() {
				net.Start(ssd, fp, stored, func() {
					transfers++
					net.Start(fp, acc, tensor, func() {
						transfers++
						finished++
						finish = eng.Now()
						launch()
					})
				})
			}
			if c < inFlight {
				// Stagger the initial window so the two legs interleave
				// from the start.
				eng.At(float64(c)*soloStored/2, start)
			} else {
				start()
			}
		}
	}
	launch()
	eng.SetStepLimit(uint64(chunks)*64 + 1024)
	if err := eng.Run(); err != nil {
		return BoxTransferResult{}, err
	}
	if finished != chunks {
		return BoxTransferResult{}, fmt.Errorf("core: box replay stalled at %d/%d", finished, chunks)
	}
	return BoxTransferResult{
		Throughput: units.SamplesPerSec(float64(chunks*chunkSamples) / finish),
		Elapsed:    finish,
		Transfers:  transfers,
	}, nil
}

// AnalyticBoxFabricRate returns the analytical fabric-only sample rate
// of one train box: the reciprocal of the busiest in-box link's per-
// sample time, scaled to the box's share of the system.
func AnalyticBoxFabricRate(sys *arch.System, w workload.Workload) (units.SamplesPerSec, error) {
	if !sys.Config.Kind.Clustered() || len(sys.Boxes) == 0 {
		return 0, fmt.Errorf("core: fabric rate needs a clustered system")
	}
	ll := prepLinkLoad(sys, w)
	sec, _, _ := ll.MaxUnitTime()
	if sec <= 0 {
		return 0, fmt.Errorf("core: no fabric load")
	}
	// prepLinkLoad spreads one sample across all boxes; one box's rate
	// is the system fabric rate divided by the box count.
	return units.SamplesPerSec(1 / sec / float64(len(sys.Boxes))), nil
}
