package core

import (
	"fmt"

	"trainbox/internal/arch"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

// UtilCategory labels one stacked component of Figure 22's host-resource
// utilization bars.
type UtilCategory string

// Figure 22's legend.
const (
	CatSSDRead      UtilCategory = "SSD read"
	CatFormatting   UtilCategory = "Data formatting"
	CatAugmentation UtilCategory = "Data augmentation"
	CatCopy         UtilCategory = "Data copy"
	CatLoad         UtilCategory = "Data load"
	CatOthers       UtilCategory = "Others"
)

// UtilCategories lists the legend in display order.
func UtilCategories() []UtilCategory {
	return []UtilCategory{CatSSDRead, CatAugmentation, CatFormatting, CatCopy, CatLoad, CatOthers}
}

// HostUtilization is one architecture's per-sample host-resource
// consumption decomposed by source, normalized to the baseline's total
// for the same resource — exactly Figure 22's y-axis.
type HostUtilization struct {
	Kind   arch.Kind
	CPU    map[UtilCategory]float64
	Memory map[UtilCategory]float64
	PCIe   map[UtilCategory]float64
}

// Total sums one resource's categories.
func total(m map[UtilCategory]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

// CPUTotal returns the normalized CPU consumption.
func (u HostUtilization) CPUTotal() float64 { return total(u.CPU) }

// MemoryTotal returns the normalized memory-bandwidth consumption.
func (u HostUtilization) MemoryTotal() float64 { return total(u.Memory) }

// PCIeTotal returns the normalized root-complex consumption.
func (u HostUtilization) PCIeTotal() float64 { return total(u.PCIe) }

// UtilizationLadder computes Figure 22 for one workload: the
// per-architecture host-resource consumption of Baseline, B+Acc,
// B+Acc+P2P, and TrainBox, normalized to the baseline totals.
func UtilizationLadder(w workload.Workload) ([]HostUtilization, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	p := w.Prep
	baseCPU := p.TotalCPUSeconds()
	baseMem := float64(p.TotalMemoryBytes())
	basePCIe := float64(p.StoredBytes + p.TensorBytes) // RC bytes/sample
	if baseCPU <= 0 || baseMem <= 0 || basePCIe <= 0 {
		return nil, fmt.Errorf("core: workload %s has degenerate baseline demands", w.Name)
	}

	mk := func() map[UtilCategory]float64 { return map[UtilCategory]float64{} }
	ladder := []arch.Kind{arch.Baseline, arch.BaselineAcc, arch.BaselineAccP2P, arch.TrainBox}
	out := make([]HostUtilization, 0, len(ladder))
	for _, k := range ladder {
		u := HostUtilization{Kind: k, CPU: mk(), Memory: mk(), PCIe: mk()}
		switch k {
		case arch.Baseline:
			u.CPU[CatFormatting] = p.CPUSeconds[workload.OpFormat] / baseCPU
			u.CPU[CatAugmentation] = p.CPUSeconds[workload.OpAugment] / baseCPU
			u.CPU[CatLoad] = p.CPUSeconds[workload.OpLoad] / baseCPU
			u.CPU[CatOthers] = p.CPUSeconds[workload.OpOther] / baseCPU
			u.Memory[CatSSDRead] = float64(p.MemoryBytes[workload.OpSSDRead]) / baseMem
			u.Memory[CatFormatting] = float64(p.MemoryBytes[workload.OpFormat]) / baseMem
			u.Memory[CatAugmentation] = float64(p.MemoryBytes[workload.OpAugment]) / baseMem
			u.Memory[CatLoad] = float64(p.MemoryBytes[workload.OpLoad]) / baseMem
			u.Memory[CatOthers] = float64(p.MemoryBytes[workload.OpOther]) / baseMem
			u.PCIe[CatSSDRead] = float64(p.StoredBytes) / basePCIe
			u.PCIe[CatLoad] = float64(p.TensorBytes) / basePCIe
		case arch.BaselineAcc:
			// Offloaded compute; the host still stages every byte twice.
			u.CPU[CatLoad] = p.CPUSeconds[workload.OpLoad] / baseCPU
			u.CPU[CatOthers] = p.CPUSeconds[workload.OpOther] / baseCPU
			u.Memory[CatCopy] = 2 * float64(p.StoredBytes+p.TensorBytes) / baseMem
			u.PCIe[CatSSDRead] = float64(p.StoredBytes) / basePCIe
			u.PCIe[CatCopy] = float64(p.StoredBytes+p.TensorBytes) / basePCIe
			u.PCIe[CatLoad] = float64(p.TensorBytes) / basePCIe
		case arch.BaselineAccP2P:
			// Host memory freed; PCIe pressure unchanged (Section IV-D).
			u.CPU[CatOthers] = p.CPUSeconds[workload.OpOther] / baseCPU
			u.Memory[CatOthers] = float64(p.MemoryBytes[workload.OpOther]) / 8 / baseMem
			u.PCIe[CatSSDRead] = float64(p.StoredBytes) / basePCIe
			u.PCIe[CatCopy] = float64(p.StoredBytes+p.TensorBytes) / basePCIe
			u.PCIe[CatLoad] = float64(p.TensorBytes) / basePCIe
		case arch.TrainBox:
			// Clustering localizes the datapath: the host sees almost
			// nothing.
			u.CPU[CatOthers] = p.CPUSeconds[workload.OpOther] / 8 / baseCPU
			u.Memory[CatOthers] = float64(p.MemoryBytes[workload.OpOther]) / 8 / baseMem
			u.PCIe[CatOthers] = 0.02 // residual control traffic
		}
		out = append(out, u)
	}
	return out, nil
}

// Normalized helper: utilization entries are shares of baseline totals;
// expose the underlying per-sample figures for reporting.
type PerSampleDemand struct {
	CPUSeconds float64
	Memory     units.Bytes
	RCBytes    units.Bytes
}

// BaselinePerSample returns the baseline's absolute per-sample demand.
func BaselinePerSample(w workload.Workload) PerSampleDemand {
	return PerSampleDemand{
		CPUSeconds: w.Prep.TotalCPUSeconds(),
		Memory:     w.Prep.TotalMemoryBytes(),
		RCBytes:    w.Prep.StoredBytes + w.Prep.TensorBytes,
	}
}
