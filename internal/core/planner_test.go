package core

import (
	"testing"

	archpkg "trainbox/internal/arch"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

func TestPlanRackMeetsTarget(t *testing.T) {
	for _, c := range []struct {
		name   string
		target units.SamplesPerSec
	}{
		{"Resnet-50", 500_000},
		{"TF-SR", 100_000},
		{"Inception-v4", 50_000},
	} {
		w, _ := workload.ByName(c.name)
		plan, err := PlanRack(w, c.target, 1024)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if float64(plan.Achieved) < float64(c.target) {
			t.Errorf("%s: achieved %v below target %v", c.name, plan.Achieved, c.target)
		}
		if plan.Accels != plan.Boxes*8 {
			t.Errorf("%s: accels %d not whole boxes", c.name, plan.Accels)
		}
		if plan.SSDs != plan.Boxes*2 {
			t.Errorf("%s: SSDs = %d, want 2 per box", c.name, plan.SSDs)
		}
	}
}

func TestPlanRackMinimality(t *testing.T) {
	// One fewer box must miss the target (the plan is not padded).
	w, _ := workload.ByName("Resnet-50")
	const target = 500_000
	plan, err := PlanRack(w, target, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Boxes <= 1 {
		t.Skip("plan already minimal")
	}
	smaller := mustBuild(t, archpkg.Config{
		Kind: archpkg.TrainBox, NumAccels: (plan.Boxes - 1) * 8,
		PoolFPGAs: max(plan.PoolFPGAs, 1),
	})
	res, err := Solve(smaller, w)
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.Throughput) >= target {
		t.Errorf("plan not minimal: %d boxes also reach %v", plan.Boxes-1, res.Throughput)
	}
}

func TestPlanRackPoolOnlyWhenNeeded(t *testing.T) {
	// A small Inception-v4 target fits in-box capacity: no pool.
	w, _ := workload.ByName("Inception-v4")
	plan, err := PlanRack(w, 20_000, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PoolFPGAs != 0 {
		t.Errorf("small plan allocated %d pool FPGAs, want 0", plan.PoolFPGAs)
	}
	// RNN-S is prep-hungry: the pool must be substantial.
	w2, _ := workload.ByName("RNN-S")
	plan2, err := PlanRack(w2, 1_000_000, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.PoolFPGAs < plan2.InBoxFPGAs {
		t.Errorf("RNN-S pool = %d FPGAs, expected more than in-box %d",
			plan2.PoolFPGAs, plan2.InBoxFPGAs)
	}
}

func TestPlanRackInfeasible(t *testing.T) {
	w, _ := workload.ByName("TF-SR")
	// 16 accelerators cannot serve a million samples/s.
	if _, err := PlanRack(w, 1_000_000, 16); err == nil {
		t.Error("infeasible target accepted")
	}
	if _, err := PlanRack(w, 0, 64); err == nil {
		t.Error("zero target accepted")
	}
	bad := w
	bad.AccelRate = 0
	if _, err := PlanRack(bad, 1000, 64); err == nil {
		t.Error("invalid workload accepted")
	}
}
