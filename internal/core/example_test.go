package core_test

import (
	"fmt"
	"log"

	"trainbox/internal/arch"
	"trainbox/internal/core"
	"trainbox/internal/workload"
)

// ExampleSolve builds the paper's baseline and TrainBox at the target
// scale and compares them — the library's primary entry point.
func ExampleSolve() {
	w, err := workload.ByName("Resnet-50")
	if err != nil {
		log.Fatal(err)
	}
	for _, kind := range []arch.Kind{arch.Baseline, arch.TrainBox} {
		sys, err := arch.Build(arch.Config{Kind: kind, NumAccels: 256})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Solve(sys, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %.0f samples/s (%s)\n", kind, float64(res.Throughput), res.Bottleneck)
	}
	// Output:
	// Baseline: 60914 samples/s (host-cpu)
	// TrainBox: 1900016 samples/s (accel-compute+sync)
}

// ExamplePlanRack sizes the smallest TrainBox rack for a throughput
// target.
func ExamplePlanRack() {
	w, err := workload.ByName("Inception-v4")
	if err != nil {
		log.Fatal(err)
	}
	plan, err := core.PlanRack(w, 100_000, 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d boxes, %d accelerators, %d pool FPGAs\n",
		plan.Boxes, plan.Accels, plan.PoolFPGAs)
	// Output:
	// 8 boxes, 64 accelerators, 0 pool FPGAs
}

// ExampleRequiredResources reproduces one Figure 10 point: the host
// resources a naive server would need at the target scale.
func ExampleRequiredResources() {
	w, err := workload.ByName("TF-AA")
	if err != nil {
		log.Fatal(err)
	}
	r, err := core.RequiredResources(w, 256)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cores: %.0f (%.0f× DGX-2)\n", r.Cores, r.CPU)
	// Output:
	// cores: 4332 (90× DGX-2)
}
