package core

import (
	"testing"

	"trainbox/internal/arch"
	"trainbox/internal/workload"
)

func TestInferenceWallArrivesEarlierThanTraining(t *testing.T) {
	// Section II-A's aside, quantified: forward-only accelerators consume
	// samples faster while preparation cost is unchanged, so the
	// baseline saturates at fewer accelerators than in training.
	cfg := DefaultInferenceConfig()
	for _, name := range []string{"Resnet-50", "TF-SR"} {
		w, _ := workload.ByName(name)
		trainSat := 48.0 / (float64(w.AccelRate) * w.Prep.TotalCPUSeconds())
		infSat, err := InferenceSaturation(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if infSat >= trainSat {
			t.Errorf("%s: inference saturates at %.1f accels, training at %.1f — inference should be earlier",
				name, infSat, trainSat)
		}
	}
}

func TestSolveInferenceBottlenecks(t *testing.T) {
	w, _ := workload.ByName("Resnet-50")
	cfg := DefaultInferenceConfig()
	base := mustBuild(t, arch.Config{Kind: arch.Baseline, NumAccels: 256})
	res, err := SolveInference(base, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PrepBound || res.Bottleneck != ConstraintCPU {
		t.Errorf("baseline inference bottleneck = %s, want host-cpu", res.Bottleneck)
	}
	// TrainBox removes the host constraints for serving too.
	tb := mustBuild(t, arch.Config{Kind: arch.TrainBox, NumAccels: 256})
	resTB, err := SolveInference(tb, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if float64(resTB.Throughput) <= float64(res.Throughput) {
		t.Errorf("TrainBox serving %v should beat baseline %v", resTB.Throughput, res.Throughput)
	}
	if resTB.Bottleneck == ConstraintCPU || resTB.Bottleneck == ConstraintMemory ||
		resTB.Bottleneck == ConstraintRC {
		t.Errorf("TrainBox serving still host-bound: %s", resTB.Bottleneck)
	}
}

func TestInferenceRateScalesWithConfig(t *testing.T) {
	w, _ := workload.ByName("Resnet-50")
	small := InferenceRate(w, InferenceConfig{BatchSize: 8, SpeedupOverTraining: 3})
	large := InferenceRate(w, InferenceConfig{BatchSize: 512, SpeedupOverTraining: 3})
	if small >= large {
		t.Error("larger serving batch should raise per-accelerator rate")
	}
	x1 := InferenceRate(w, InferenceConfig{BatchSize: 64, SpeedupOverTraining: 1})
	x3 := InferenceRate(w, InferenceConfig{BatchSize: 64, SpeedupOverTraining: 3})
	if float64(x3) < 2.9*float64(x1) {
		t.Error("speedup multiplier not applied")
	}
}

func TestSolveInferenceValidation(t *testing.T) {
	w, _ := workload.ByName("Resnet-50")
	sys := mustBuild(t, arch.Config{Kind: arch.Baseline, NumAccels: 8})
	if _, err := SolveInference(sys, w, InferenceConfig{BatchSize: 0, SpeedupOverTraining: 3}); err == nil {
		t.Error("zero batch accepted")
	}
	if _, err := SolveInference(sys, w, InferenceConfig{BatchSize: 8, SpeedupOverTraining: 0}); err == nil {
		t.Error("zero speedup accepted")
	}
	bad := w
	bad.AccelRate = 0
	if _, err := SolveInference(sys, bad, DefaultInferenceConfig()); err == nil {
		t.Error("invalid workload accepted")
	}
	if _, err := InferenceSaturation(bad, DefaultInferenceConfig()); err == nil {
		t.Error("invalid workload accepted by saturation")
	}
}
