package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"trainbox/internal/arch"
	"trainbox/internal/hostres"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

// TestSolverMonotoneInHostResources: giving the host more cores or more
// memory bandwidth never reduces throughput, for random workloads,
// scales, and architectures — a fundamental sanity invariant of the
// bottleneck solver.
func TestSolverMonotoneInHostResources(t *testing.T) {
	ws := workload.Workloads()
	kinds := arch.Kinds()
	rng := rand.New(rand.NewSource(13))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := ws[r.Intn(len(ws))]
		kind := kinds[r.Intn(len(kinds))]
		n := 1 << r.Intn(9) // 1..256
		base := hostres.DGX2()
		bigger := base
		bigger.Cores = base.Cores * (2 + r.Intn(4))
		bigger.MemoryBandwidth = base.MemoryBandwidth * units.BytesPerSec(2+r.Intn(4))

		s1, err := arch.Build(arch.Config{Kind: kind, NumAccels: n, Host: base})
		if err != nil {
			return false
		}
		s2, err := arch.Build(arch.Config{Kind: kind, NumAccels: n, Host: bigger})
		if err != nil {
			return false
		}
		r1, err := Solve(s1, w)
		if err != nil {
			return false
		}
		r2, err := Solve(s2, w)
		if err != nil {
			return false
		}
		return float64(r2.Throughput) >= float64(r1.Throughput)*(1-1e-9)
	}
	cfg := &quick.Config{
		MaxCount: 50,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			vals[0] = reflect.ValueOf(rng.Int63())
		},
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// TestSolverOrderingInvariant: the ladder relations that hold at every
// scale — P2P ≥ Acc (P2P only removes work), Gen4 ≥ P2P (only adds
// bandwidth), TrainBox ≥ TrainBox-without-pool (only adds capacity), and
// TrainBox ≥ Baseline. B+Acc ≥ Baseline deliberately does NOT hold at
// small scale: an undersized accelerator array loses to 48 host cores,
// the same effect Figure 21 shows for GPU preparation.
func TestSolverOrderingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	ws := workload.Workloads()
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := ws[r.Intn(len(ws))]
		n := 4 << r.Intn(7) // 4..256
		rates := map[arch.Kind]float64{}
		for _, k := range arch.Kinds() {
			sys, err := arch.Build(arch.Config{Kind: k, NumAccels: n})
			if err != nil {
				return false
			}
			res, err := Solve(sys, w)
			if err != nil {
				return false
			}
			rates[k] = float64(res.Throughput)
		}
		eps := 1e-9
		return rates[arch.BaselineAccP2P] >= rates[arch.BaselineAcc]*(1-eps) &&
			rates[arch.BaselineAccP2PGen4] >= rates[arch.BaselineAccP2P]*(1-eps) &&
			rates[arch.TrainBox] >= rates[arch.TrainBoxNoPool]*(1-eps) &&
			rates[arch.TrainBox] >= rates[arch.Baseline]*(1-eps)
	}
	cfg := &quick.Config{
		MaxCount: 40,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			vals[0] = reflect.ValueOf(rng.Int63())
		},
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// TestSolverPoolMonotone: a larger prep-pool never reduces TrainBox
// throughput.
func TestSolverPoolMonotone(t *testing.T) {
	w, _ := workload.ByName("RNN-S")
	prev := 0.0
	for _, pool := range []int{1, 8, 64, 256, 512} {
		sys, err := arch.Build(arch.Config{Kind: arch.TrainBox, NumAccels: 256, PoolFPGAs: pool})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(sys, w)
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.Throughput) < prev*(1-1e-9) {
			t.Errorf("pool %d: throughput %v fell below %v", pool, res.Throughput, prev)
		}
		prev = float64(res.Throughput)
	}
}
