package core

import (
	"fmt"

	"trainbox/internal/accel"
	"trainbox/internal/arch"
	"trainbox/internal/fpga"
	"trainbox/internal/storage"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

// TrainPlan is the train initializer's output (Section V-A): data
// distribution across train-box SSD shards, the measured per-batch
// execution time, the required preparation throughput, and the prep-pool
// allocation per box.
type TrainPlan struct {
	Workload workload.Workload
	// Shards[i] lists the dataset keys assigned to box i's SSDs.
	Shards [][]string
	// BatchTime is the measured per-batch accelerator time (compute +
	// synchronization), the initializer's dummy-batch measurement.
	BatchTime float64
	// RequiredPrepRate is the preparation throughput that keeps the
	// accelerators fed.
	RequiredPrepRate units.SamplesPerSec
	// PerBox is each train box's prep-pool allocation.
	PerBox []fpga.PoolAllocation
	// PoolFPGAsUsed is the whole-device total drawn from the pool.
	PoolFPGAsUsed int
	// Feasible reports whether every box meets its requirement.
	Feasible bool
}

// InitializeTraining runs the train initializer against a built TrainBox
// system: it partitions the dataset keys over boxes, "measures" the
// per-batch time from the accelerator model (the paper feeds random dummy
// batches; the model is our measurement), derives the required
// preparation throughput, and sizes the prep-pool per box.
func InitializeTraining(sys *arch.System, w workload.Workload, datasetKeys []string) (TrainPlan, error) {
	if !sys.Config.Kind.Clustered() {
		return TrainPlan{}, fmt.Errorf("core: train initializer targets clustered systems, got %v", sys.Config.Kind)
	}
	if err := w.Validate(); err != nil {
		return TrainPlan{}, err
	}
	plan := TrainPlan{Workload: w}

	// 1. Distribute the data to SSDs in each train box.
	shards, err := storage.Partition(datasetKeys, len(sys.Boxes))
	if err != nil {
		return TrainPlan{}, err
	}
	plan.Shards = shards

	// 2. Measure per-batch execution time (compute + sync).
	cluster, err := accel.NewCluster(len(sys.Accels))
	if err != nil {
		return TrainPlan{}, err
	}
	plan.BatchTime = cluster.StepTime(w, w.BatchSize)
	if plan.BatchTime <= 0 {
		return TrainPlan{}, fmt.Errorf("core: degenerate batch time for %s", w.Name)
	}

	// 3. Required preparation throughput: every accelerator consumes one
	//    batch per step.
	plan.RequiredPrepRate = units.SamplesPerSec(
		float64(len(sys.Accels)*w.BatchSize) / plan.BatchTime)

	// 4. Size the pool per box.
	perBoxRate := float64(plan.RequiredPrepRate) / float64(len(sys.Boxes))
	available := sys.Config.PoolFPGAs
	plan.Feasible = true
	for _, g := range sys.Boxes {
		alloc, err := fpga.SizePool(fpga.PoolRequest{
			RequiredRate:          units.SamplesPerSec(perBoxRate),
			InBoxFPGAs:            len(g.FPGAs),
			Type:                  w.Type,
			OffloadBytesPerSample: w.Prep.StoredBytes + w.Prep.TensorBytes,
		}, sys.PoolNet, available)
		if err != nil {
			if !sys.Config.Kind.HasPool() {
				// No pool: record the shortfall and continue.
				alloc = fpga.PoolAllocation{
					InBoxRate: units.SamplesPerSec(float64(fpga.PrepRate(w.Type)) * float64(len(g.FPGAs))),
				}
				alloc.Satisfied = float64(alloc.InBoxRate) >= perBoxRate
			} else {
				return TrainPlan{}, err
			}
		}
		available -= alloc.PoolFPGAs
		if available < 0 {
			available = 0
		}
		plan.PoolFPGAsUsed += alloc.PoolFPGAs
		if !alloc.Satisfied {
			plan.Feasible = false
		}
		plan.PerBox = append(plan.PerBox, alloc)
	}
	return plan, nil
}
