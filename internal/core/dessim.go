package core

import (
	"fmt"

	"trainbox/internal/arch"
	"trainbox/internal/sim"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

// SimOptions controls the discrete-event validation run.
type SimOptions struct {
	// ChunkSamples is the granularity of one simulated work item.
	ChunkSamples int
	// Chunks is how many items to push through the pipeline.
	Chunks int
	// InFlight bounds concurrently active chunks (pipeline depth).
	InFlight int
}

// DefaultSimOptions returns a configuration that reaches steady state.
func DefaultSimOptions() SimOptions {
	return SimOptions{ChunkSamples: 64, Chunks: 2000, InFlight: 256}
}

// SimResult is the measured behaviour of the event-level replay.
type SimResult struct {
	// Throughput is the measured preparation rate.
	Throughput units.SamplesPerSec
	// Elapsed is the simulated makespan in seconds.
	Elapsed float64
	// Events is the number of simulation events executed.
	Events uint64
}

// SimulatePrep replays the data-preparation pipeline of a Baseline or
// clustered (TrainBox) system as a discrete-event simulation: chunks of
// samples flow through SSD read, host/FPGA compute, and the staging
// resources as queueing stations. Its purpose is validation — the
// measured steady-state rate must match the analytical solver's
// preparation rate (tests assert agreement within a few percent).
//
// The prep-pool is not replayed (use TrainBoxNoPool for clustered
// validation); B+Acc variants are validated through their shared
// constraint structure with Baseline.
func SimulatePrep(sys *arch.System, w workload.Workload, opts SimOptions) (SimResult, error) {
	if opts.ChunkSamples <= 0 || opts.Chunks <= 0 || opts.InFlight <= 0 {
		return SimResult{}, fmt.Errorf("core: invalid sim options %+v", opts)
	}
	switch sys.Config.Kind {
	case arch.Baseline:
		return simulateBaseline(sys, w, opts)
	case arch.TrainBoxNoPool, arch.TrainBox:
		return simulateClustered(sys, w, opts)
	default:
		return SimResult{}, fmt.Errorf("core: DES replay not implemented for %v", sys.Config.Kind)
	}
}

// stage is one queueing station: a resource plus the per-chunk service
// time and units it consumes.
type stage struct {
	res     *sim.Resource
	units   int
	service float64
}

// runPipeline pushes chunks through stages in order with bounded
// in-flight parallelism and returns the makespan.
func runPipeline(eng *sim.Engine, stages []stage, chunks, inFlight int) (float64, uint64, error) {
	launched, finished := 0, 0
	var finish float64

	var advance func(chunk, stageIdx int)
	var launch func()
	advance = func(chunk, stageIdx int) {
		if stageIdx == len(stages) {
			finished++
			finish = eng.Now()
			launch()
			return
		}
		st := stages[stageIdx]
		st.res.Use(st.units, st.service, func() { advance(chunk, stageIdx+1) })
	}
	launch = func() {
		for launched < chunks && launched-finished < inFlight {
			c := launched
			launched++
			advance(c, 0)
		}
	}
	launch()
	eng.SetStepLimit(uint64(chunks) * uint64(len(stages)+2) * 4)
	if err := eng.Run(); err != nil {
		return 0, 0, err
	}
	if finished != chunks {
		return 0, 0, fmt.Errorf("core: pipeline stalled at %d/%d chunks", finished, chunks)
	}
	return finish, eng.Steps(), nil
}

// simulateBaseline replays the host-staged CPU-prep pipeline: SSD read →
// host CPU (all prep ops) → DRAM staging → root-complex transfers.
func simulateBaseline(sys *arch.System, w workload.Workload, opts SimOptions) (SimResult, error) {
	eng := sim.NewEngine()
	n := float64(opts.ChunkSamples)
	host := sys.Config.Host

	ssd := sim.NewResource(eng, "ssd", len(sys.SSDs))
	cpu := sim.NewResource(eng, "cpu", host.Cores)
	mem := sim.NewResource(eng, "mem", 1)
	rc := sim.NewResource(eng, "rc", 1)

	stages := []stage{
		{ssd, 1, n * float64(w.Prep.StoredBytes) / float64(sys.Config.SSD.ReadBandwidth)},
		{cpu, 1, n * w.Prep.TotalCPUSeconds()},
		{mem, 1, n * float64(w.Prep.TotalMemoryBytes()) / float64(host.MemoryBandwidth)},
		{rc, 1, n * float64(w.Prep.StoredBytes+w.Prep.TensorBytes) / float64(sys.RCCap)},
	}
	elapsed, events, err := runPipeline(eng, stages, opts.Chunks, opts.InFlight)
	if err != nil {
		return SimResult{}, err
	}
	return SimResult{
		Throughput: units.SamplesPerSec(float64(opts.Chunks) * n / elapsed),
		Elapsed:    elapsed,
		Events:     events,
	}, nil
}

// simulateClustered replays one train box's local pipeline (SSD → FPGA →
// accelerator links) and scales by the box count: clustering makes boxes
// independent, which is exactly the property being validated.
func simulateClustered(sys *arch.System, w workload.Workload, opts SimOptions) (SimResult, error) {
	if len(sys.Boxes) == 0 {
		return SimResult{}, fmt.Errorf("core: clustered system has no boxes")
	}
	eng := sim.NewEngine()
	n := float64(opts.ChunkSamples)
	box := sys.Boxes[0]
	perFPGA := float64(perDevicePrepRate(sys.Config.Prep, w))

	ssd := sim.NewResource(eng, "box-ssd", len(box.SSDs))
	fpgas := sim.NewResource(eng, "box-fpga", len(box.FPGAs))
	// Each FPGA's PCIe egress carries the prepared tensors.
	egress := sim.NewResource(eng, "fpga-egress", len(box.FPGAs))
	egressBW := float64(sys.Topo.LinkOf(box.FPGAs[0]).Bandwidth)

	stages := []stage{
		{ssd, 1, n * float64(w.Prep.StoredBytes) / float64(sys.Config.SSD.ReadBandwidth)},
		{fpgas, 1, n / perFPGA},
		{egress, 1, n * float64(w.Prep.TensorBytes) / egressBW},
	}
	elapsed, events, err := runPipeline(eng, stages, opts.Chunks, opts.InFlight)
	if err != nil {
		return SimResult{}, err
	}
	boxRate := float64(opts.Chunks) * n / elapsed
	return SimResult{
		Throughput: units.SamplesPerSec(boxRate * float64(len(sys.Boxes))),
		Elapsed:    elapsed,
		Events:     events,
	}, nil
}
