package core

import (
	"math"
	"testing"

	"trainbox/internal/arch"
	"trainbox/internal/workload"
)

// TestBoxReplayMatchesAnalyticFabricRate drives real concurrent DMAs
// through the fluid-flow PCIe simulator on a train-box topology and
// checks the steady rate against the static per-link accounting. The
// two models share no code path (max-min-fair dynamics vs byte sums), so
// agreement validates both.
func TestBoxReplayMatchesAnalyticFabricRate(t *testing.T) {
	for _, name := range []string{"Resnet-50", "TF-AA"} {
		w, _ := workload.ByName(name)
		sys := mustBuild(t, arch.Config{Kind: arch.TrainBoxNoPool, NumAccels: 8})
		analytic, err := AnalyticBoxFabricRate(sys, w)
		if err != nil {
			t.Fatal(err)
		}
		replay, err := SimulateBoxTransfers(sys, w, 400, 16)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(float64(replay.Throughput)-float64(analytic)) / float64(analytic)
		if rel > 0.08 {
			t.Errorf("%s: replay %v vs analytic %v (%.1f%% apart)",
				name, replay.Throughput, analytic, 100*rel)
		}
		if replay.Transfers != 800 {
			t.Errorf("%s: transfers = %d, want 800", name, replay.Transfers)
		}
	}
}

func TestBoxReplayValidation(t *testing.T) {
	w, _ := workload.ByName("Resnet-50")
	flat := mustBuild(t, arch.Config{Kind: arch.Baseline, NumAccels: 8})
	if _, err := SimulateBoxTransfers(flat, w, 10, 8); err == nil {
		t.Error("flat system accepted")
	}
	if _, err := AnalyticBoxFabricRate(flat, w); err == nil {
		t.Error("flat system accepted by analytic rate")
	}
	tb := mustBuild(t, arch.Config{Kind: arch.TrainBoxNoPool, NumAccels: 8})
	if _, err := SimulateBoxTransfers(tb, w, 0, 8); err == nil {
		t.Error("zero chunks accepted")
	}
}
