package core

import (
	"math"
	"strings"
	"testing"

	"trainbox/internal/arch"
	"trainbox/internal/workload"
)

func TestExplainNamesTheBottleneck(t *testing.T) {
	w, _ := workload.ByName("Resnet-50")
	res := solve(t, arch.Baseline, 256, w)
	out := res.Explain()
	if !strings.Contains(out, "bound by host-cpu") {
		t.Errorf("explanation missing bottleneck:\n%s", out)
	}
	if !strings.Contains(out, "* host-cpu") {
		t.Errorf("bottleneck not marked:\n%s", out)
	}
	if !strings.Contains(out, "data preparation limits this system") {
		t.Errorf("regime line missing:\n%s", out)
	}
	// Constraints must appear tightest-first: the bottleneck is the
	// first listed entry.
	lines := strings.Split(out, "\n")
	if len(lines) < 3 || !strings.Contains(lines[1], "host-cpu") {
		t.Errorf("tightest constraint not first:\n%s", out)
	}
}

func TestExplainComputeBoundRegime(t *testing.T) {
	w, _ := workload.ByName("VGG-19")
	res := solve(t, arch.TrainBox, 256, w)
	if !strings.Contains(res.Explain(), "accelerators limit this system") {
		t.Errorf("compute-bound regime not reported:\n%s", res.Explain())
	}
}

func TestHeadroom(t *testing.T) {
	w, _ := workload.ByName("Resnet-50")
	res := solve(t, arch.Baseline, 256, w)
	if h := res.Headroom(ConstraintCPU); math.Abs(h-1) > 1e-9 {
		t.Errorf("bottleneck headroom = %v, want 1", h)
	}
	if h := res.Headroom(ConstraintRC); h <= 1 {
		t.Errorf("RC headroom = %v, want > 1 for CPU-bound baseline", h)
	}
	if !math.IsInf(res.Headroom("no-such-constraint"), 1) {
		t.Error("unknown constraint should have infinite headroom")
	}
}
