package core

import (
	"math"
	"testing"

	"trainbox/internal/arch"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

func build(t *testing.T, k arch.Kind, n int) *arch.System {
	t.Helper()
	sys, err := arch.Build(arch.Config{Kind: k, NumAccels: n})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func solve(t *testing.T, k arch.Kind, n int, w workload.Workload) Result {
	t.Helper()
	res, err := Solve(build(t, k, n), w)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFig19SpeedupStructure is the headline reproduction: the relative
// ordering and rough magnitudes of Figure 19 at 256 accelerators.
func TestFig19SpeedupStructure(t *testing.T) {
	var sumTB, sumAcc, maxTB float64
	var maxName string
	for _, w := range workload.Workloads() {
		base := solve(t, arch.Baseline, 256, w)
		acc := solve(t, arch.BaselineAcc, 256, w)
		p2p := solve(t, arch.BaselineAccP2P, 256, w)
		gen4 := solve(t, arch.BaselineAccP2PGen4, 256, w)
		tb := solve(t, arch.TrainBox, 256, w)

		b := float64(base.Throughput)
		spAcc := float64(acc.Throughput) / b
		spTB := float64(tb.Throughput) / b
		sumAcc += spAcc
		sumTB += spTB
		if spTB > maxTB {
			maxTB, maxName = spTB, w.Name
		}

		// Ordering: Baseline < B+Acc = B+Acc+P2P < Gen4 < TrainBox.
		if !(spAcc > 1.5) {
			t.Errorf("%s: B+Acc speedup = %.2f, want > 1.5", w.Name, spAcc)
		}
		if math.Abs(float64(p2p.Throughput-acc.Throughput)) > 1e-6*float64(acc.Throughput) {
			t.Errorf("%s: P2P alone changed throughput (%v vs %v) — Section VI-C says it must not",
				w.Name, p2p.Throughput, acc.Throughput)
		}
		if float64(gen4.Throughput) <= float64(p2p.Throughput)*1.5 {
			t.Errorf("%s: Gen4 should roughly double the P2P variant", w.Name)
		}
		if float64(tb.Throughput) <= float64(gen4.Throughput) {
			t.Errorf("%s: TrainBox (%v) must beat Gen4 (%v) — locality over raw bandwidth",
				w.Name, tb.Throughput, gen4.Throughput)
		}
	}
	avgTB := sumTB / 7
	avgAcc := sumAcc / 7
	// Paper: 44.4× average TrainBox speedup; 3.32× from acceleration
	// alone; the largest improvement (84.3×) on TF-AA.
	if avgTB < 35 || avgTB > 55 {
		t.Errorf("average TrainBox speedup = %.1f×, want ≈44×", avgTB)
	}
	if avgAcc < 2.5 || avgAcc > 5 {
		t.Errorf("average B+Acc speedup = %.1f×, want ≈3.3×", avgAcc)
	}
	if maxName != "TF-AA" {
		t.Errorf("largest speedup on %s, want TF-AA", maxName)
	}
	if maxTB < 70 || maxTB > 110 {
		t.Errorf("max speedup = %.0f×, want ≈84×", maxTB)
	}
}

func TestBaselineIsCPUBoundAtScale(t *testing.T) {
	for _, w := range workload.Workloads() {
		res := solve(t, arch.Baseline, 256, w)
		if res.Bottleneck != ConstraintCPU {
			t.Errorf("%s baseline bottleneck = %s, want host CPU (Figure 10a dominates)",
				w.Name, res.Bottleneck)
		}
		if !res.PrepBound {
			t.Errorf("%s baseline at 256 should be preparation bound", w.Name)
		}
	}
}

func TestBaselineComputeBoundAtSmallScale(t *testing.T) {
	// With one accelerator, preparation easily keeps up and the
	// accelerator is the bottleneck — the historical regime.
	for _, w := range workload.Workloads() {
		res := solve(t, arch.Baseline, 1, w)
		if res.PrepBound {
			t.Errorf("%s with one accelerator should be compute bound, got %s",
				w.Name, res.Bottleneck)
		}
	}
}

func TestBaselineSaturationNearEighteen(t *testing.T) {
	// Figure 8: "after 18 neural network accelerators, all models do not
	// benefit from more accelerators". Verify throughput at 256 ≈
	// throughput at 32 for the slowest-saturating model (Inception-v4).
	w, _ := workload.ByName("Inception-v4")
	t32 := solve(t, arch.Baseline, 32, w).Throughput
	t256 := solve(t, arch.Baseline, 256, w).Throughput
	if math.Abs(float64(t256-t32)) > 0.02*float64(t32) {
		t.Errorf("Inception-v4 baseline grew from %v (32) to %v (256); should have saturated", t32, t256)
	}
	// And it still scales from 8 → 16.
	t8 := solve(t, arch.Baseline, 8, w).Throughput
	t16 := solve(t, arch.Baseline, 16, w).Throughput
	if float64(t16) < 1.5*float64(t8) {
		t.Errorf("Inception-v4 should still scale at 8→16 (%v → %v)", t8, t16)
	}
}

func TestBAccShiftsBottleneckToRootComplex(t *testing.T) {
	// Section IV-D: after offload "the pressure on the PCIe RC becomes
	// double", making the RC the binding constraint.
	for _, w := range workload.Workloads() {
		res := solve(t, arch.BaselineAcc, 256, w)
		if res.Bottleneck != ConstraintRC {
			t.Errorf("%s B+Acc bottleneck = %s, want root complex", w.Name, res.Bottleneck)
		}
	}
}

func TestTrainBoxReachesComputeBoundOrPrep(t *testing.T) {
	// TrainBox removes every host-side constraint: the bottleneck must be
	// either the accelerators themselves or the preparation devices —
	// never the host CPU, DRAM, or root complex.
	for _, w := range workload.Workloads() {
		res := solve(t, arch.TrainBox, 256, w)
		if res.Bottleneck == ConstraintCPU || res.Bottleneck == ConstraintMemory ||
			res.Bottleneck == ConstraintRC {
			t.Errorf("%s TrainBox still host-bound: %s", w.Name, res.Bottleneck)
		}
	}
}

func TestInceptionTrainBoxPoolIrrelevant(t *testing.T) {
	// Figure 21: "TrainBox without prep-pool is not shown [for
	// Inception-v4] because its performance is same as TrainBox."
	w, _ := workload.ByName("Inception-v4")
	noPool := solve(t, arch.TrainBoxNoPool, 256, w).Throughput
	pool := solve(t, arch.TrainBox, 256, w).Throughput
	if math.Abs(float64(noPool-pool)) > 1e-6*float64(pool) {
		t.Errorf("Inception-v4: no-pool %v vs pool %v, want identical", noPool, pool)
	}
}

func TestTFSRNeedsPool(t *testing.T) {
	// Figure 21: TF-SR without the pool loses throughput; with the pool
	// it reaches the target.
	w, _ := workload.ByName("TF-SR")
	noPool := solve(t, arch.TrainBoxNoPool, 256, w)
	pool := solve(t, arch.TrainBox, 256, w)
	if float64(noPool.Throughput) >= 0.8*float64(pool.Throughput) {
		t.Errorf("TF-SR no-pool %v should fall well short of pooled %v",
			noPool.Throughput, pool.Throughput)
	}
	if noPool.Bottleneck != ConstraintPrep {
		t.Errorf("TF-SR no-pool bottleneck = %s, want prep-device", noPool.Bottleneck)
	}
	// With the pool, the system reaches the accelerator target.
	if pool.Bottleneck != ConstraintCompute {
		t.Errorf("TF-SR pooled bottleneck = %s, want compute", pool.Bottleneck)
	}
}

func TestGPUPrepCrossesCPUOnlyAtScale(t *testing.T) {
	// Figure 21: "At small scale, data preparation acceleration using
	// GPUs shows lower throughput than the baseline... Only when the
	// number of GPUs is large enough, its throughput becomes higher."
	w, _ := workload.ByName("Inception-v4")
	gpuSmall, err := Solve(mustBuild(t, arch.Config{Kind: arch.BaselineAcc, NumAccels: 16, Prep: arch.PrepGPU}), w)
	if err != nil {
		t.Fatal(err)
	}
	cpuSmall := solve(t, arch.Baseline, 16, w)
	if float64(gpuSmall.Throughput) >= float64(cpuSmall.Throughput) {
		t.Errorf("GPU prep at 16 accels (%v) should trail CPU baseline (%v)",
			gpuSmall.Throughput, cpuSmall.Throughput)
	}
	gpuLarge, err := Solve(mustBuild(t, arch.Config{Kind: arch.BaselineAcc, NumAccels: 256, Prep: arch.PrepGPU}), w)
	if err != nil {
		t.Fatal(err)
	}
	cpuLarge := solve(t, arch.Baseline, 256, w)
	if float64(gpuLarge.Throughput) <= float64(cpuLarge.Throughput) {
		t.Errorf("GPU prep at 256 accels (%v) should beat CPU baseline (%v)",
			gpuLarge.Throughput, cpuLarge.Throughput)
	}
	// FPGA prep beats GPU prep at every scale (Section VI-D).
	for _, n := range []int{4, 16, 64, 256} {
		g, err := Solve(mustBuild(t, arch.Config{Kind: arch.BaselineAcc, NumAccels: n, Prep: arch.PrepGPU}), w)
		if err != nil {
			t.Fatal(err)
		}
		f, err := Solve(mustBuild(t, arch.Config{Kind: arch.BaselineAcc, NumAccels: n, Prep: arch.PrepFPGA}), w)
		if err != nil {
			t.Fatal(err)
		}
		if float64(f.Throughput) < float64(g.Throughput) {
			t.Errorf("n=%d: FPGA prep (%v) below GPU prep (%v)", n, f.Throughput, g.Throughput)
		}
	}
}

func mustBuild(t *testing.T, cfg arch.Config) *arch.System {
	t.Helper()
	sys, err := arch.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBatchSweepFavorsTrainBoxAtLargeBatches(t *testing.T) {
	// Figure 20: TrainBox wins at every batch size, and the speedup grows
	// with batch size.
	w, _ := workload.ByName("Resnet-50")
	base := build(t, arch.Baseline, 256)
	tb := build(t, arch.TrainBox, 256)
	prevSpeedup := 0.0
	for _, batch := range []int{8, 32, 128, 512, 2048, 8192} {
		rb, err := SolveBatch(base, w, batch)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := SolveBatch(tb, w, batch)
		if err != nil {
			t.Fatal(err)
		}
		speedup := float64(rt.Throughput) / float64(rb.Throughput)
		if speedup < 1 {
			t.Errorf("batch %d: TrainBox slower than baseline (%.2f×)", batch, speedup)
		}
		if speedup < prevSpeedup*0.999 {
			t.Errorf("batch %d: speedup %.2f declined from %.2f — Figure 20 says it grows",
				batch, speedup, prevSpeedup)
		}
		prevSpeedup = speedup
	}
	if prevSpeedup < 10 {
		t.Errorf("largest-batch speedup = %.1f×, want ≫10×", prevSpeedup)
	}
}

func TestSolveInputValidation(t *testing.T) {
	sys := build(t, arch.Baseline, 8)
	w, _ := workload.ByName("Resnet-50")
	if _, err := SolveBatch(sys, w, 0); err == nil {
		t.Error("zero batch accepted")
	}
	bad := w
	bad.AccelRate = 0
	if _, err := Solve(sys, bad); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestConstraintsExposeAllRates(t *testing.T) {
	w, _ := workload.ByName("Resnet-50")
	res := solve(t, arch.TrainBox, 64, w)
	for _, name := range []string{ConstraintCompute, ConstraintPrep, ConstraintLink, ConstraintSSD} {
		if _, ok := res.Constraints[name]; !ok {
			t.Errorf("constraint %s missing from TrainBox result", name)
		}
	}
	// The reported throughput equals the minimum constraint.
	minRate := units.SamplesPerSec(math.Inf(1))
	for _, r := range res.Constraints {
		if r < minRate {
			minRate = r
		}
	}
	if res.Throughput != minRate {
		t.Errorf("Throughput %v != min constraint %v", res.Throughput, minRate)
	}
}

// TestThroughputMonotoneInScale: more accelerators never reduce
// throughput under any architecture (a solver sanity invariant).
func TestThroughputMonotoneInScale(t *testing.T) {
	w, _ := workload.ByName("RNN-L")
	for _, k := range arch.Kinds() {
		prev := units.SamplesPerSec(0)
		for _, n := range []int{1, 4, 16, 64, 256} {
			res := solve(t, k, n, w)
			if res.Throughput < prev*(1-1e-9) {
				t.Errorf("%v: throughput fell from %v to %v at n=%d", k, prev, res.Throughput, n)
			}
			prev = res.Throughput
		}
	}
}
