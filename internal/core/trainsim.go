package core

import (
	"fmt"

	"trainbox/internal/accel"
	"trainbox/internal/arch"
	"trainbox/internal/report"
	"trainbox/internal/sim"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

// TrainingSimResult is the measured behaviour of the overlapped training
// replay (Figure 1 with next-batch prefetching as a two-stage pipeline).
type TrainingSimResult struct {
	// Throughput is the measured end-to-end training rate.
	Throughput units.SamplesPerSec
	// Steps is the number of completed training steps.
	Steps int
	// Elapsed is the simulated makespan in seconds.
	Elapsed float64
	// AccelIdle is the fraction of time the accelerators waited for data
	// — nonzero exactly when preparation is the bottleneck.
	AccelIdle float64
	// PrepIdle is the fraction of time preparation waited for a free
	// buffer — nonzero exactly when compute is the bottleneck.
	PrepIdle float64
	// Timeline records each stage activity interval for visualization
	// (report.Gantt); lanes are "prep" and "compute".
	Timeline []report.Span
}

// SimulateTraining replays the overlapped training pipeline for the
// given number of steps: data preparation for batch i+1 runs while the
// accelerators compute and synchronize batch i, with double buffering
// between the stages. Stage times come from the analytical model; the
// replay validates the *composition* — that end-to-end throughput equals
// min(prep rate, compute rate) and that the slack appears on the
// correct side — which is the paper's Figure 1/Section II-B argument.
func SimulateTraining(sys *arch.System, w workload.Workload, steps int) (TrainingSimResult, error) {
	if steps <= 0 {
		return TrainingSimResult{}, fmt.Errorf("core: need ≥ 1 step, got %d", steps)
	}
	res, err := Solve(sys, w)
	if err != nil {
		return TrainingSimResult{}, err
	}
	globalBatch := float64(len(sys.Accels) * w.BatchSize)
	prepTime := globalBatch / float64(res.PrepRate)
	cluster, err := accel.NewCluster(len(sys.Accels))
	if err != nil {
		return TrainingSimResult{}, err
	}
	computeTime := cluster.StepTime(w, w.BatchSize)

	eng := sim.NewEngine()
	// Double buffering: at most 2 prepared-but-unconsumed batches.
	const buffers = 2
	ready := 0 // prepared batches waiting
	preparing := false
	computing := false
	done := 0
	var finish float64
	var accelIdleStart = 0.0
	var accelIdleTotal, prepIdleTotal float64
	var timeline []report.Span
	var prepIdleStart = 0.0
	accelWaiting, prepWaiting := true, false

	var maybeStartPrep, maybeStartCompute func()
	maybeStartPrep = func() {
		// Batches already produced or in production: consumed + being
		// consumed + buffered + being prepared. Never prepare more than
		// the run needs.
		produced := done + ready
		if computing {
			produced++
		}
		if preparing || ready >= buffers || produced >= steps {
			if !preparing && ready >= buffers && !prepWaiting {
				prepWaiting = true
				prepIdleStart = eng.Now()
			}
			return
		}
		if prepWaiting {
			prepIdleTotal += eng.Now() - prepIdleStart
			prepWaiting = false
		}
		preparing = true
		prepStart := eng.Now()
		eng.After(prepTime, func() {
			preparing = false
			ready++
			timeline = append(timeline, report.Span{Lane: "prep", Start: prepStart, End: eng.Now()})
			maybeStartPrep()
			maybeStartCompute()
		})
	}
	maybeStartCompute = func() {
		if computing || done >= steps {
			return
		}
		if ready == 0 {
			if !accelWaiting {
				accelWaiting = true
				accelIdleStart = eng.Now()
			}
			return
		}
		if accelWaiting {
			accelIdleTotal += eng.Now() - accelIdleStart
			accelWaiting = false
		}
		ready--
		computing = true
		computeStart := eng.Now()
		maybeStartPrep() // a buffer just freed
		eng.After(computeTime, func() {
			computing = false
			done++
			finish = eng.Now()
			timeline = append(timeline, report.Span{Lane: "compute", Start: computeStart, End: eng.Now()})
			maybeStartCompute()
		})
	}
	maybeStartPrep()
	maybeStartCompute()
	eng.SetStepLimit(uint64(steps)*8 + 64)
	if err := eng.Run(); err != nil {
		return TrainingSimResult{}, err
	}
	if done != steps {
		return TrainingSimResult{}, fmt.Errorf("core: training replay completed %d/%d steps", done, steps)
	}
	out := TrainingSimResult{
		Steps:      steps,
		Elapsed:    finish,
		Throughput: units.SamplesPerSec(float64(steps) * globalBatch / finish),
		Timeline:   timeline,
	}
	if finish > 0 {
		out.AccelIdle = accelIdleTotal / finish
		out.PrepIdle = prepIdleTotal / finish
	}
	return out, nil
}
