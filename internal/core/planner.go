package core

import (
	"fmt"
	"math"

	"trainbox/internal/arch"
	"trainbox/internal/fpga"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

// RackPlan is a provisioning recommendation: the smallest TrainBox
// deployment that sustains a target training throughput for a workload.
type RackPlan struct {
	Workload string
	// TargetRate is the requested training throughput.
	TargetRate units.SamplesPerSec
	// Accels and Boxes are the accelerator and train-box counts.
	Accels, Boxes int
	// InBoxFPGAs and PoolFPGAs split the preparation capacity.
	InBoxFPGAs, PoolFPGAs int
	// SSDs is the total SSD count.
	SSDs int
	// Achieved is the solved throughput of the planned system.
	Achieved units.SamplesPerSec
	// Bottleneck names the planned system's binding constraint.
	Bottleneck string
}

// PlanRack sizes a TrainBox deployment for a target rate: it computes
// the accelerator count from the workload's per-accelerator rate
// (rounded up to whole boxes), then sizes the prep-pool the way the
// train initializer would, then verifies with the solver. It fails when
// no feasible plan exists within maxAccels (e.g., the target exceeds
// what maxAccels accelerators can compute).
func PlanRack(w workload.Workload, target units.SamplesPerSec, maxAccels int) (RackPlan, error) {
	if err := w.Validate(); err != nil {
		return RackPlan{}, err
	}
	if target <= 0 {
		return RackPlan{}, fmt.Errorf("core: target rate %v must be positive", target)
	}
	if maxAccels <= 0 {
		maxAccels = 1024
	}

	// Accelerators needed, with a small margin for sync overhead, rounded
	// up to whole train boxes.
	perAccel := float64(w.EffectiveAccelRate(w.BatchSize))
	needed := int(math.Ceil(float64(target) / perAccel * 1.02))
	if needed < 1 {
		needed = 1
	}
	boxes := (needed + arch.AccelsPerBox - 1) / arch.AccelsPerBox
	accels := boxes * arch.AccelsPerBox

	for accels <= maxAccels {
		// Pool sizing: deficit between required prep rate and in-box
		// FPGA capacity.
		inBoxFPGAs := boxes * arch.FPGAsPerTrainBox
		prepPerFPGA := float64(fpga.PrepRate(w.Type))
		deficit := float64(target) - float64(inBoxFPGAs)*prepPerFPGA
		pool := 0
		if deficit > 0 {
			pool = int(math.Ceil(deficit / prepPerFPGA * 1.05)) // margin for Ethernet loss
		}
		sys, err := arch.Build(arch.Config{
			Kind: arch.TrainBox, NumAccels: accels, PoolFPGAs: maxInt(pool, 1),
		})
		if err != nil {
			return RackPlan{}, err
		}
		res, err := Solve(sys, w)
		if err != nil {
			return RackPlan{}, err
		}
		if float64(res.Throughput) >= float64(target) {
			return RackPlan{
				Workload:   w.Name,
				TargetRate: target,
				Accels:     accels,
				Boxes:      boxes,
				InBoxFPGAs: inBoxFPGAs,
				PoolFPGAs:  pool,
				SSDs:       len(sys.SSDs),
				Achieved:   res.Throughput,
				Bottleneck: res.Bottleneck,
			}, nil
		}
		// Undershoot (sync overhead, Ethernet ceiling, fabric): add a box.
		boxes++
		accels = boxes * arch.AccelsPerBox
	}
	return RackPlan{}, fmt.Errorf("core: target %v for %s infeasible within %d accelerators",
		target, w.Name, maxAccels)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
