package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Explain renders a Result as a short human-readable analysis: the
// achieved throughput, the binding constraint, and every modelled
// constraint ordered from tightest to loosest with its headroom over the
// achieved rate.
func (r Result) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "throughput %.0f samples/s, bound by %s\n",
		float64(r.Throughput), r.Bottleneck)
	type entry struct {
		name string
		rate float64
	}
	entries := make([]entry, 0, len(r.Constraints))
	for name, rate := range r.Constraints {
		entries = append(entries, entry{name, float64(rate)})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].rate != entries[j].rate {
			return entries[i].rate < entries[j].rate
		}
		return entries[i].name < entries[j].name
	})
	for _, e := range entries {
		headroom := e.rate / float64(r.Throughput)
		marker := " "
		if e.name == r.Bottleneck {
			marker = "*"
		}
		if headroom > 1e6 {
			fmt.Fprintf(&sb, "  %s %-22s unconstrained\n", marker, e.name)
			continue
		}
		fmt.Fprintf(&sb, "  %s %-22s %12.0f samples/s (%.2f× headroom)\n",
			marker, e.name, e.rate, headroom)
	}
	if r.PrepBound {
		sb.WriteString("  data preparation limits this system (the paper's at-scale regime)\n")
	} else {
		sb.WriteString("  accelerators limit this system (the balanced regime TrainBox targets)\n")
	}
	return sb.String()
}

// Headroom returns a named constraint's rate divided by the achieved
// throughput (1 = binding), or +Inf when the constraint is absent.
func (r Result) Headroom(constraint string) float64 {
	rate, ok := r.Constraints[constraint]
	if !ok || r.Throughput <= 0 {
		return math.Inf(1)
	}
	return float64(rate) / float64(r.Throughput)
}
