package core

import (
	"fmt"

	"trainbox/internal/accel"
	"trainbox/internal/arch"
	"trainbox/internal/hostres"
	"trainbox/internal/pcie"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

// Requirements quantifies the host resources a baseline-architecture
// server would need to keep n accelerators fed — the Figure 10 analysis.
// All three values are normalized to the DGX-2 reference (48 cores,
// 239 GB/s DRAM, the Gen3 root-complex capacity).
type Requirements struct {
	NumAccels int
	// TargetRate is the aggregate accelerator demand.
	TargetRate units.SamplesPerSec
	// Cores is the absolute physical-core requirement.
	Cores float64
	// CPU, MemoryBW, and PCIeBW are normalized to DGX-2.
	CPU      float64
	MemoryBW float64
	PCIeBW   float64
}

// RequiredResources computes the Figure 10 point for a workload at n
// accelerators: the baseline datapath's per-sample demands times the
// aggregate accelerator rate, normalized to DGX-2.
func RequiredResources(w workload.Workload, n int) (Requirements, error) {
	if n <= 0 {
		return Requirements{}, fmt.Errorf("core: need at least one accelerator, got %d", n)
	}
	if err := w.Validate(); err != nil {
		return Requirements{}, err
	}
	cluster, err := accel.NewCluster(n)
	if err != nil {
		return Requirements{}, err
	}
	rate := float64(cluster.PeakThroughput(w))
	ref := hostres.DGX2()
	rcRef := float64(arch.RCCapacity(pcie.Gen3))

	cores := rate * w.Prep.TotalCPUSeconds()
	memBW := rate * float64(w.Prep.TotalMemoryBytes())
	pcieBW := rate * float64(w.Prep.StoredBytes+w.Prep.TensorBytes)

	return Requirements{
		NumAccels:  n,
		TargetRate: units.SamplesPerSec(rate),
		Cores:      cores,
		CPU:        cores / float64(ref.Cores),
		MemoryBW:   memBW / float64(ref.MemoryBandwidth),
		PCIeBW:     pcieBW / rcRef,
	}, nil
}

// RequirementSweep computes Figure 10's curves: requirements for each
// accelerator count in ns.
func RequirementSweep(w workload.Workload, ns []int) ([]Requirements, error) {
	out := make([]Requirements, 0, len(ns))
	for _, n := range ns {
		r, err := RequiredResources(w, n)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// DefaultScales are the accelerator counts the paper sweeps (Figures 8,
// 10, 21): powers of two... the paper's axes use 1, 4, 16, 64, 256.
func DefaultScales() []int { return []int{1, 2, 4, 8, 16, 32, 64, 128, 256} }
