package dataprep

import (
	"testing"

	"trainbox/internal/dsp"
	"trainbox/internal/imgproc"
)

// TestPrepareImageDecodedBitIdentical: splitting decode off and running
// the tail on the decoded image yields byte-for-byte the tensor the
// fused path produces, across seeds and with a shared read-only source.
func TestPrepareImageDecodedBitIdentical(t *testing.T) {
	cfg := imgproc.DefaultSynthConfig()
	data, err := imgproc.EncodeJPEG(imgproc.SynthesizeImage(cfg, 3, 2), cfg.Quality)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := imgproc.DecodeJPEG(data)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := DefaultImageConfig()
	for seed := int64(0); seed < 8; seed++ {
		want, err := PrepareImage(data, pcfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PrepareImageDecoded(decoded, pcfg, seed, NewScratch())
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Data) != len(want.Data) {
			t.Fatalf("seed %d: %d cells, want %d", seed, len(got.Data), len(want.Data))
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("seed %d: cell %d = %v, want %v", seed, i, got.Data[i], want.Data[i])
			}
		}
	}
	// The shared source must come through untouched (read-only
	// contract): re-decode and compare.
	fresh, err := imgproc.DecodeJPEG(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh.Pix {
		if decoded.Pix[i] != fresh.Pix[i] {
			t.Fatalf("PrepareImageDecoded mutated its source at pixel %d", i)
		}
	}
}

// TestPrepareAudioDecodedBitIdentical: same split oracle for audio —
// the tail on a decoded signal matches the fused path, and the shared
// signal is never mutated (augmentation runs on a scratch copy).
func TestPrepareAudioDecodedBitIdentical(t *testing.T) {
	sig, err := dsp.SynthesizeAudio(dsp.DefaultSynthConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	pcm := dsp.PCM16Encode(sig)
	decoded, err := dsp.PCM16Decode(pcm)
	if err != nil {
		t.Fatal(err)
	}
	orig := append([]float64(nil), decoded...)
	acfg := DefaultAudioConfig()
	s := NewScratch() // reuse one scratch across seeds, like a worker would
	for seed := int64(0); seed < 8; seed++ {
		want, err := PrepareAudio(pcm, acfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PrepareAudioDecoded(decoded, acfg, seed, s)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Data) != len(want.Data) {
			t.Fatalf("seed %d: %d cells, want %d", seed, len(got.Data), len(want.Data))
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("seed %d: cell %d = %v, want %v", seed, i, got.Data[i], want.Data[i])
			}
		}
	}
	for i := range orig {
		if decoded[i] != orig[i] {
			t.Fatalf("PrepareAudioDecoded mutated the shared signal at sample %d", i)
		}
	}
}
