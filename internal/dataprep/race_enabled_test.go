//go:build race

package dataprep

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation distorts kernel timing measurements.
const raceEnabled = true
