package dataprep

import (
	"fmt"
	"math/rand"

	"trainbox/internal/imgproc"
	"trainbox/internal/storage"
)

// RICAPConfig parameterizes the crop-and-patch augmentation (Takahashi
// et al., the paper's Related Work example of emerging augmentations
// that raise preparation cost — each training sample now decodes *four*
// stored JPEGs).
type RICAPConfig struct {
	OutW, OutH int
	Mean, Std  []float64
}

// DefaultRICAPConfig returns the Imagenet-geometry configuration.
func DefaultRICAPConfig() RICAPConfig {
	return RICAPConfig{
		OutW: imgproc.ModelSize, OutH: imgproc.ModelSize,
		Mean: imgproc.ImagenetMean, Std: imgproc.ImagenetStd,
	}
}

// RICAPSample is one patched training sample with its soft label: the
// area-weighted mixture over the four sources' classes.
type RICAPSample struct {
	Tensor *imgproc.Tensor
	// SoftLabel maps class → weight; weights sum to 1.
	SoftLabel map[int]float64
	// Keys are the four source objects, quadrant order.
	Keys [4]string
}

// PrepareRICAP decodes four stored JPEGs, patches them into one training
// image, and returns the tensor with its soft label. Deterministic per
// seed.
func PrepareRICAP(objs [4]storage.Object, cfg RICAPConfig, seed int64) (RICAPSample, error) {
	var out RICAPSample
	var sources [4]*imgproc.Image
	for i, obj := range objs {
		img, err := imgproc.DecodeJPEG(obj.Data)
		if err != nil {
			return out, fmt.Errorf("dataprep: ricap source %d (%s): %w", i, obj.Key, err)
		}
		sources[i] = img
		out.Keys[i] = obj.Key
	}
	rng := rand.New(rand.NewSource(seed))
	patched, weights, err := imgproc.RICAP(sources, cfg.OutW, cfg.OutH, rng)
	if err != nil {
		return out, err
	}
	ten, err := imgproc.ToTensor(patched, cfg.Mean, cfg.Std)
	if err != nil {
		return out, err
	}
	out.Tensor = ten
	out.SoftLabel = map[int]float64{}
	for q, obj := range objs {
		out.SoftLabel[obj.Label] += weights[q]
	}
	return out, nil
}

// PrepareRICAPBatch draws groups of four objects from the keyed store
// (cycling with a per-epoch shuffle) and prepares n patched samples.
func PrepareRICAPBatch(store *storage.Store, keys []string, n int, cfg RICAPConfig, datasetSeed int64, epoch int) ([]RICAPSample, error) {
	if len(keys) < 4 {
		return nil, fmt.Errorf("dataprep: RICAP needs ≥ 4 keys, got %d", len(keys))
	}
	if n <= 0 {
		return nil, fmt.Errorf("dataprep: RICAP batch size %d", n)
	}
	order := ShuffleKeys(keys, datasetSeed, epoch)
	out := make([]RICAPSample, n)
	for i := 0; i < n; i++ {
		var objs [4]storage.Object
		for q := 0; q < 4; q++ {
			key := order[(4*i+q)%len(order)]
			obj, err := store.Get(key)
			if err != nil {
				return nil, err
			}
			objs[q] = obj
		}
		s, err := PrepareRICAP(objs, cfg, SampleSeed(datasetSeed, fmt.Sprintf("ricap-%d", i), epoch))
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}
