package dataprep

import (
	"fmt"
	"math/rand"

	"trainbox/internal/dsp"
	"trainbox/internal/imgproc"
	"trainbox/internal/memframe"
	"trainbox/internal/storage"
)

// Scratch is one worker's reusable working set for the per-sample
// decode→augment→cast path: decode/crop images, the PCM signal buffer,
// a cached dsp.MelPlan, and the MJPEG clip scratch. The Prepare*Scratch
// variants thread it through every kernel so steady-state preparation
// recycles one bounded working set instead of allocating per sample
// (DESIGN.md §12).
//
// A Scratch is NOT safe for concurrent use — hold one per goroutine
// (dataprep.Executor keeps a pipeline.Pool of them). The intermediate
// buffers live for exactly one Prepare call; only the returned
// tensor/spectrogram escapes, and when the Scratch carries an output
// Set those outputs draw from it (give them back via Executor.Recycle).
type Scratch struct {
	imgA imgproc.Image // decode destination, then mirror destination
	imgB imgproc.Image // crop destination
	sig  []float64     // PCM decode buffer

	melCfg dsp.MelConfig // config mel was built for
	mel    *dsp.MelPlan  // lazily (re)built when the config changes

	clip   imgproc.Video    // MJPEG decode scratch
	frames []*imgproc.Image // temporal-sample scratch

	// out supplies output tensor/spectrogram buffers; nil means outputs
	// are freshly allocated (and never recycled) — the safe default for
	// callers that hold results indefinitely, e.g. oracle tests.
	out *memframe.Set
}

// NewScratch returns a Scratch whose outputs are freshly allocated.
func NewScratch() *Scratch { return &Scratch{} }

// NewScratchWithOutput returns a Scratch drawing output buffers from
// out. Callers own the returned samples' buffers until they Put them
// back (Executor.Recycle does this).
func NewScratchWithOutput(out *memframe.Set) *Scratch { return &Scratch{out: out} }

// getF32 draws an output float32 buffer from the output set, or
// allocates when the scratch has none.
func (s *Scratch) getF32(n int) []float32 {
	if s == nil || s.out == nil {
		return make([]float32, n)
	}
	return s.out.F32.Get(n)
}

// getF64 draws an output float64 buffer from the output set.
func (s *Scratch) getF64(n int) []float64 {
	if s == nil || s.out == nil {
		return make([]float64, n)
	}
	return s.out.F64.Get(n)
}

// melPlan returns the cached MelPlan for cfg, rebuilding it when the
// config changed since the last call.
func (s *Scratch) melPlan(cfg dsp.MelConfig) (*dsp.MelPlan, error) {
	if s.mel == nil || s.melCfg != cfg {
		p, err := dsp.NewMelPlan(cfg)
		if err != nil {
			return nil, err
		}
		s.mel, s.melCfg = p, cfg
	}
	return s.mel, nil
}

// PrepareImageScratch is PrepareImage with an explicit working set: the
// decode, crop, mirror, and noise stages run in s's buffers, and the
// returned tensor's Data comes from s's output set (caller-owned until
// recycled). A nil s behaves like PrepareImage. The output is
// bit-identical to PrepareImage for equal inputs and seeds.
func PrepareImageScratch(jpegData []byte, cfg ImageConfig, seed int64, s *Scratch) (*imgproc.Tensor, error) {
	if s == nil {
		s = NewScratch()
	}
	if err := imgproc.DecodeJPEGInto(&s.imgA, jpegData); err != nil {
		return nil, err
	}
	return PrepareImageDecoded(&s.imgA, cfg, seed, s)
}

// PrepareImageDecoded runs the augment+cast tail of the image pipeline
// on an already-decoded image — the split that lets a cache tier
// (internal/dscache) pay the JPEG decode once and replay only this
// cheap, seeded part per consumer. src is read-only and may be shared
// across goroutines (the crop copies its pixels out before any buffer
// is written); it may also alias s.imgA, the scratch decode buffer,
// which the tail only reuses after the crop. The output is
// bit-identical to PrepareImage(decode(src bytes)) for equal seeds.
func PrepareImageDecoded(src *imgproc.Image, cfg ImageConfig, seed int64, s *Scratch) (*imgproc.Tensor, error) {
	if s == nil {
		s = NewScratch()
	}
	rng := rand.New(rand.NewSource(seed))
	var err error
	if cfg.Augment {
		err = imgproc.RandomCropInto(&s.imgB, src, cfg.CropW, cfg.CropH, rng)
	} else {
		err = imgproc.CenterCropInto(&s.imgB, src, cfg.CropW, cfg.CropH)
	}
	if err != nil {
		return nil, err
	}
	cur := &s.imgB
	if cfg.Augment && rng.Float64() < cfg.MirrorProb {
		imgproc.MirrorInto(&s.imgA, cur) // the crop copied src out, so imgA is free
		cur = &s.imgA
	}
	if cfg.Augment && cfg.NoiseStd > 0 {
		imgproc.GaussianNoiseInto(cur, cur, cfg.NoiseStd, rng)
	}
	t := &imgproc.Tensor{Data: s.getF32(3 * cur.H * cur.W)}
	if err := imgproc.ToTensorInto(t, cur, cfg.Mean, cfg.Std); err != nil {
		if s.out != nil {
			s.out.F32.Put(t.Data)
		}
		return nil, err
	}
	return t, nil
}

// PrepareAudioScratch is PrepareAudio with an explicit working set: PCM
// decode and the log-Mel front-end run in s's buffers (the MelPlan is
// cached across calls), and the returned spectrogram's Data comes from
// s's output set. A nil s behaves like PrepareAudio. The output is
// bit-identical to PrepareAudio for equal inputs and seeds.
func PrepareAudioScratch(pcmData []byte, cfg AudioConfig, seed int64, s *Scratch) (*dsp.Spectrogram, error) {
	if s == nil {
		s = NewScratch()
	}
	var err error
	s.sig, err = dsp.PCM16DecodeInto(s.sig, pcmData)
	if err != nil {
		return nil, err
	}
	return prepareAudioTail(cfg, seed, s)
}

// PrepareAudioDecoded runs the augment+front-end tail of the audio
// pipeline on an already-decoded PCM signal — the split that lets a
// cache tier (internal/dscache) pay the PCM decode once per key. sig is
// read-only and may be shared across goroutines: noise augmentation
// mutates the signal in place, so the tail runs on a scratch copy. The
// output is bit-identical to PrepareAudio(encode(sig)) for equal seeds
// because PCM16 decoding is exact.
func PrepareAudioDecoded(sig []float64, cfg AudioConfig, seed int64, s *Scratch) (*dsp.Spectrogram, error) {
	if s == nil {
		s = NewScratch()
	}
	s.sig = append(s.sig[:0], sig...)
	return prepareAudioTail(cfg, seed, s)
}

// prepareAudioTail is the shared post-decode audio path operating on
// s.sig (which it may mutate): noise augment → log-Mel → SpecAugment →
// normalize.
func prepareAudioTail(cfg AudioConfig, seed int64, s *Scratch) (*dsp.Spectrogram, error) {
	rng := rand.New(rand.NewSource(seed))
	if cfg.Augment && cfg.NoiseStd > 0 {
		dsp.AddNoise(s.sig, cfg.NoiseStd, rng)
	}
	plan, err := s.melPlan(cfg.Mel)
	if err != nil {
		return nil, err
	}
	frames := cfg.Mel.STFT.NumFrames(len(s.sig))
	mel := &dsp.Spectrogram{Data: s.getF64(frames * cfg.Mel.NumMels)}
	if err := plan.LogMelInto(mel, s.sig); err != nil {
		if s.out != nil {
			s.out.F64.Put(mel.Data)
		}
		return nil, err
	}
	if cfg.Augment {
		if cfg.TimeMaskWidth > 0 {
			dsp.TimeMask(mel, cfg.TimeMaskWidth, 0, rng)
		}
		if cfg.FreqMaskWidth > 0 {
			dsp.FreqMask(mel, cfg.FreqMaskWidth, 0, rng)
		}
	}
	if cfg.Normalize {
		dsp.Normalize(mel)
	}
	return mel, nil
}

// PrepareVideoScratch is PrepareVideo with an explicit working set: the
// MJPEG clip decodes into reused frame buffers, the per-frame
// crop/mirror stages run in s's images, and each returned tensor's Data
// comes from s's output set. A nil s behaves like PrepareVideo. The
// output is bit-identical to PrepareVideo for equal inputs and seeds.
func PrepareVideoScratch(mjpeg []byte, cfg VideoConfig, seed int64, s *Scratch) ([]*imgproc.Tensor, error) {
	if s == nil {
		s = NewScratch()
	}
	if cfg.FramesPerClip <= 0 {
		return nil, fmt.Errorf("dataprep: frames per clip %d", cfg.FramesPerClip)
	}
	if err := imgproc.DecodeMJPEGInto(&s.clip, mjpeg); err != nil {
		return nil, err
	}
	n := len(s.clip.Frames)
	if cfg.FramesPerClip > n {
		return nil, fmt.Errorf("imgproc: cannot sample %d of %d frames", cfg.FramesPerClip, n)
	}
	s.frames = s.frames[:0]
	for i := 0; i < cfg.FramesPerClip; i++ {
		s.frames = append(s.frames, s.clip.Frames[i*n/cfg.FramesPerClip])
	}
	rng := rand.New(rand.NewSource(seed))
	w, h := s.clip.FrameSize()
	// One crop window and one mirror decision for the whole clip,
	// drawing from rng in the same order as PrepareVideo.
	var x0, y0 int
	if cfg.Augment {
		if cfg.CropW > w || cfg.CropH > h {
			return nil, fmt.Errorf("dataprep: crop %dx%d larger than frames %dx%d", cfg.CropW, cfg.CropH, w, h)
		}
		x0 = rng.Intn(w - cfg.CropW + 1)
		y0 = rng.Intn(h - cfg.CropH + 1)
	} else {
		x0 = (w - cfg.CropW) / 2
		y0 = (h - cfg.CropH) / 2
	}
	mirror := cfg.Augment && rng.Float64() < cfg.MirrorProb

	out := make([]*imgproc.Tensor, len(s.frames))
	for i, frame := range s.frames {
		if err := imgproc.CropInto(&s.imgB, frame, x0, y0, cfg.CropW, cfg.CropH); err != nil {
			return nil, err
		}
		cur := &s.imgB
		if mirror {
			imgproc.MirrorInto(&s.imgA, cur)
			cur = &s.imgA
		}
		t := &imgproc.Tensor{Data: s.getF32(3 * cur.H * cur.W)}
		if err := imgproc.ToTensorInto(t, cur, cfg.Mean, cfg.Std); err != nil {
			if s.out != nil {
				s.out.F32.Put(t.Data)
			}
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// ScratchPreparer is a Preparer that can run against a caller-provided
// working set. The CPU preparers implement it; dataprep.Executor uses
// it (with a pooled Scratch per worker) whenever its Preparer supports
// it.
type ScratchPreparer interface {
	Preparer
	PrepareScratch(obj storage.Object, seed int64, s *Scratch) Prepared
}

// PrepareScratch implements ScratchPreparer.
func (p ImagePreparer) PrepareScratch(obj storage.Object, seed int64, s *Scratch) Prepared {
	t, err := PrepareImageScratch(obj.Data, p.Config, seed, s)
	return Prepared{Key: obj.Key, Label: obj.Label, Image: t, Err: err}
}

// PrepareScratch implements ScratchPreparer.
func (p AudioPreparer) PrepareScratch(obj storage.Object, seed int64, s *Scratch) Prepared {
	sp, err := PrepareAudioScratch(obj.Data, p.Config, seed, s)
	return Prepared{Key: obj.Key, Label: obj.Label, Audio: sp, Err: err}
}

// PrepareScratch implements ScratchPreparer.
func (p VideoPreparer) PrepareScratch(obj storage.Object, seed int64, s *Scratch) Prepared {
	t, err := PrepareVideoScratch(obj.Data, p.Config, seed, s)
	return Prepared{Key: obj.Key, Label: obj.Label, Video: t, Err: err}
}
