//go:build !race

package dataprep

const raceEnabled = false
