package dataprep

import (
	"math"
	"testing"

	"trainbox/internal/memframe"
	"trainbox/internal/storage"
)

// TestPrepareImageScratchBitIdentical reuses one Scratch across many
// (sample, seed) pairs and asserts byte-for-byte equality with the
// legacy PrepareImage path — the tentpole's correctness contract.
func TestPrepareImageScratchBitIdentical(t *testing.T) {
	store := imageStore(t, 6)
	cfg := DefaultImageConfig()
	s := NewScratch()
	for i := 0; i < 6; i++ {
		obj, err := store.Get(keyOf(t, store, i, "img"))
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range []int64{1, 42, -7, 1 << 40} {
			want, err := PrepareImage(obj.Data, cfg, seed)
			if err != nil {
				t.Fatal(err)
			}
			got, err := PrepareImageScratch(obj.Data, cfg, seed, s)
			if err != nil {
				t.Fatal(err)
			}
			if got.C != want.C || got.H != want.H || got.W != want.W {
				t.Fatalf("shape (%d,%d,%d) != (%d,%d,%d)", got.C, got.H, got.W, want.C, want.H, want.W)
			}
			for j := range want.Data {
				if got.Data[j] != want.Data[j] {
					t.Fatalf("sample %d seed %d: data[%d] = %v, want %v (bit-exact)", i, seed, j, got.Data[j], want.Data[j])
				}
			}
		}
	}
}

// TestPrepareImageScratchNoAugment covers the center-crop arm.
func TestPrepareImageScratchNoAugment(t *testing.T) {
	store := imageStore(t, 2)
	cfg := DefaultImageConfig()
	cfg.Augment = false
	obj, err := store.Get("img-00000")
	if err != nil {
		t.Fatal(err)
	}
	want, err := PrepareImage(obj.Data, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PrepareImageScratch(obj.Data, cfg, 3, NewScratch())
	if err != nil {
		t.Fatal(err)
	}
	for j := range want.Data {
		if got.Data[j] != want.Data[j] {
			t.Fatalf("data[%d] = %v, want %v", j, got.Data[j], want.Data[j])
		}
	}
}

// TestPrepareAudioScratchBitIdentical reuses one Scratch (and its
// cached MelPlan) across samples and seeds against PrepareAudio.
func TestPrepareAudioScratchBitIdentical(t *testing.T) {
	store := audioStore(t, 3)
	cfg := DefaultAudioConfig()
	s := NewScratch()
	for i := 0; i < 3; i++ {
		obj, err := store.Get(keyOf(t, store, i, "aud"))
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range []int64{1, 99, -13} {
			want, err := PrepareAudio(obj.Data, cfg, seed)
			if err != nil {
				t.Fatal(err)
			}
			got, err := PrepareAudioScratch(obj.Data, cfg, seed, s)
			if err != nil {
				t.Fatal(err)
			}
			if got.Frames != want.Frames || got.Bins != want.Bins {
				t.Fatalf("shape %dx%d != %dx%d", got.Frames, got.Bins, want.Frames, want.Bins)
			}
			for j := range want.Data {
				if got.Data[j] != want.Data[j] && !(math.IsNaN(got.Data[j]) && math.IsNaN(want.Data[j])) {
					t.Fatalf("sample %d seed %d: data[%d] = %v, want %v (bit-exact)", i, seed, j, got.Data[j], want.Data[j])
				}
			}
		}
	}
}

// TestPrepareVideoScratchBitIdentical reuses one Scratch across clips
// and seeds against PrepareVideo, including the no-augment arm.
func TestPrepareVideoScratchBitIdentical(t *testing.T) {
	store := videoStore(t, 2, 8)
	cfg := DefaultVideoConfig()
	cfg.FramesPerClip = 4
	s := NewScratch()
	for _, augment := range []bool{true, false} {
		cfg.Augment = augment
		for i := 0; i < 2; i++ {
			obj, err := store.Get(keyOf(t, store, i, "vid"))
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range []int64{5, -2} {
				want, err := PrepareVideo(obj.Data, cfg, seed)
				if err != nil {
					t.Fatal(err)
				}
				got, err := PrepareVideoScratch(obj.Data, cfg, seed, s)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("frames = %d, want %d", len(got), len(want))
				}
				for f := range want {
					for j := range want[f].Data {
						if got[f].Data[j] != want[f].Data[j] {
							t.Fatalf("augment=%v clip %d seed %d frame %d: data[%d] differs", augment, i, seed, f, j)
						}
					}
				}
			}
		}
	}
}

// keyOf formats the builder key naming ("img-%05d" etc.) and asserts it
// exists, catching drift between the builders and the tests.
func keyOf(t *testing.T, store *storage.Store, i int, prefix string) string {
	t.Helper()
	key := prefixKey(prefix, i)
	if _, err := store.Get(key); err != nil {
		t.Fatalf("dataset key %q missing: %v", key, err)
	}
	return key
}

func prefixKey(prefix string, i int) string {
	const digits = "00000"
	buf := []byte(prefix + "-" + digits)
	for p := len(buf) - 1; i > 0; p-- {
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf)
}

// TestExecutorScratchPathMatchesDirect runs a batch through the
// Executor (pooled scratches + pooled outputs) and asserts each sample
// equals the direct Prepare path, then recycles and asserts the output
// pool reuses the buffers: in steady state News ≪ Gets.
func TestExecutorScratchPathMatchesDirect(t *testing.T) {
	store := imageStore(t, 8)
	cfg := DefaultImageConfig()
	exec := NewExecutor(ImagePreparer{Config: cfg}, 2, 7)
	keys := store.Keys()

	var prev []Prepared
	for epoch := 0; epoch < 5; epoch++ {
		batch, err := exec.PrepareBatch(store, keys, epoch)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range batch {
			obj, err := store.Get(p.Key)
			if err != nil {
				t.Fatal(err)
			}
			want, err := PrepareImage(obj.Data, cfg, SampleSeed(7, p.Key, epoch))
			if err != nil {
				t.Fatal(err)
			}
			for j := range want.Data {
				if p.Image.Data[j] != want.Data[j] {
					t.Fatalf("epoch %d key %s: data[%d] = %v, want %v", epoch, p.Key, j, p.Image.Data[j], want.Data[j])
				}
			}
		}
		// Recycle the previous epoch only after verifying this one, the
		// way train's extract stage staggers recycling behind prepare.
		exec.Recycle(prev...)
		prev = batch
	}
	exec.Recycle(prev...)

	ss := exec.ScratchStats()
	if ss.Gets == 0 {
		t.Fatal("scratch pool never used — executor is not on the scratch path")
	}
	if ss.News*4 > ss.Gets {
		t.Errorf("scratch pool reuse too low: News=%d Gets=%d (want News ≪ Gets)", ss.News, ss.Gets)
	}
	os := exec.OutputStats()
	if os.Gets != 5*int64(len(keys)) {
		t.Errorf("output Gets = %d, want %d", os.Gets, 5*len(keys))
	}
	if os.Puts == 0 {
		t.Error("Recycle never returned a buffer to the output pool")
	}
	if os.News*2 > os.Gets {
		t.Errorf("output pool reuse too low: News=%d Gets=%d (want News ≪ Gets)", os.News, os.Gets)
	}
}

// TestExecutorRecycleIdempotentOnFresh asserts recycling samples that
// did not come from a pooled path is harmless (documented contract).
func TestExecutorRecycleIdempotentOnFresh(t *testing.T) {
	store := imageStore(t, 2)
	cfg := DefaultImageConfig()
	obj, err := store.Get("img-00000")
	if err != nil {
		t.Fatal(err)
	}
	tensor, err := PrepareImage(obj.Data, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	exec := NewExecutor(ImagePreparer{Config: cfg}, 1, 1)
	exec.Recycle(Prepared{Key: "x", Image: tensor})
	exec.Recycle(Prepared{}) // nothing set
}

// TestScratchOutputPoolFeedsBack prepares, recycles, and prepares again
// with a single explicit Scratch, asserting the second tensor reuses
// the recycled buffer (same backing array) and stays bit-identical.
func TestScratchOutputPoolFeedsBack(t *testing.T) {
	store := imageStore(t, 1)
	cfg := DefaultImageConfig()
	obj, err := store.Get("img-00000")
	if err != nil {
		t.Fatal(err)
	}
	out := memframe.NewSet()
	s := NewScratchWithOutput(out)

	t1, err := PrepareImageScratch(obj.Data, cfg, 11, s)
	if err != nil {
		t.Fatal(err)
	}
	first := &t1.Data[0]
	out.F32.Put(t1.Data)

	t2, err := PrepareImageScratch(obj.Data, cfg, 11, s)
	if err != nil {
		t.Fatal(err)
	}
	if &t2.Data[0] != first {
		t.Error("second prepare did not reuse the recycled output buffer")
	}
	want, err := PrepareImage(obj.Data, cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want.Data {
		if t2.Data[j] != want.Data[j] {
			t.Fatalf("recycled-buffer prepare diverged at [%d]", j)
		}
	}
	st := out.Stats()
	if st.News != 1 || st.Gets != 2 || st.Puts != 1 {
		t.Errorf("output stats = %+v, want News=1 Gets=2 Puts=1", st)
	}
}

// TestPrepareImageScratchSteadyStateAllocs proves the headline claim:
// once warm, the scratch path allocates a small constant per sample
// (the rand.Rand + tensor header) instead of the legacy path's tens of
// thousands — comfortably over the issue's required 10× reduction.
func TestPrepareImageScratchSteadyStateAllocs(t *testing.T) {
	store := imageStore(t, 1)
	cfg := DefaultImageConfig()
	obj, err := store.Get("img-00000")
	if err != nil {
		t.Fatal(err)
	}
	out := memframe.NewSet()
	s := NewScratchWithOutput(out)
	// Warm the scratch and the output pool.
	for i := 0; i < 3; i++ {
		tensor, err := PrepareImageScratch(obj.Data, cfg, int64(i), s)
		if err != nil {
			t.Fatal(err)
		}
		out.F32.Put(tensor.Data)
	}
	allocs := testing.AllocsPerRun(20, func() {
		tensor, err := PrepareImageScratch(obj.Data, cfg, 5, s)
		if err != nil {
			t.Fatal(err)
		}
		out.F32.Put(tensor.Data)
	})
	// Legacy PrepareImage runs ≈65k allocs/sample on this corpus; the
	// scratch path must be at least 10× lower. Observed: single digits.
	if allocs > 100 {
		t.Errorf("steady-state allocs/sample = %.0f, want ≤ 100", allocs)
	}
}

// TestPrepareAudioScratchSteadyStateAllocs is the audio equivalent
// (legacy ≈93 allocs/sample; scratch path must be ≤ 9).
func TestPrepareAudioScratchSteadyStateAllocs(t *testing.T) {
	store := audioStore(t, 1)
	cfg := DefaultAudioConfig()
	obj, err := store.Get("aud-00000")
	if err != nil {
		t.Fatal(err)
	}
	out := memframe.NewSet()
	s := NewScratchWithOutput(out)
	for i := 0; i < 3; i++ {
		sp, err := PrepareAudioScratch(obj.Data, cfg, int64(i), s)
		if err != nil {
			t.Fatal(err)
		}
		out.F64.Put(sp.Data)
	}
	allocs := testing.AllocsPerRun(20, func() {
		sp, err := PrepareAudioScratch(obj.Data, cfg, 5, s)
		if err != nil {
			t.Fatal(err)
		}
		out.F64.Put(sp.Data)
	})
	if allocs > 9 {
		t.Errorf("steady-state allocs/sample = %.0f, want ≤ 9", allocs)
	}
}
