package dataprep

import (
	"testing"

	"trainbox/internal/dsp"
	"trainbox/internal/imgproc"
	"trainbox/internal/memframe"
)

func benchJPEG(b *testing.B) []byte {
	b.Helper()
	cfg := imgproc.DefaultSynthConfig()
	data, err := imgproc.EncodeJPEG(imgproc.SynthesizeImage(cfg, 1, 3), cfg.Quality)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

func benchPCM(b *testing.B) []byte {
	b.Helper()
	sig, err := dsp.SynthesizeAudio(dsp.DefaultSynthConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	return dsp.PCM16Encode(sig)
}

// BenchmarkPrepareImageScratch is the steady-state pooled path: one
// Scratch, outputs recycled every iteration.
func BenchmarkPrepareImageScratch(b *testing.B) {
	data := benchJPEG(b)
	cfg := DefaultImageConfig()
	out := memframe.NewSet()
	s := NewScratchWithOutput(out)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := PrepareImageScratch(data, cfg, 7, s)
		if err != nil {
			b.Fatal(err)
		}
		out.F32.Put(t.Data)
	}
}

// BenchmarkPrepareImageFresh is the legacy throwaway path, kept as the
// comparison point for the scratch win.
func BenchmarkPrepareImageFresh(b *testing.B) {
	data := benchJPEG(b)
	cfg := DefaultImageConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PrepareImage(data, cfg, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrepareAudioScratch is the pooled audio path with a cached
// MelPlan and recycled spectrogram buffers.
func BenchmarkPrepareAudioScratch(b *testing.B) {
	data := benchPCM(b)
	cfg := DefaultAudioConfig()
	out := memframe.NewSet()
	s := NewScratchWithOutput(out)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp, err := PrepareAudioScratch(data, cfg, 7, s)
		if err != nil {
			b.Fatal(err)
		}
		out.F64.Put(sp.Data)
	}
}

// BenchmarkPrepareAudioFresh is the legacy audio path.
func BenchmarkPrepareAudioFresh(b *testing.B) {
	data := benchPCM(b)
	cfg := DefaultAudioConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PrepareAudio(data, cfg, 7); err != nil {
			b.Fatal(err)
		}
	}
}
