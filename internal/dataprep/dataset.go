package dataprep

import (
	"fmt"

	"trainbox/internal/dsp"
	"trainbox/internal/imgproc"
	"trainbox/internal/storage"
)

// BuildImageDataset fills the store with n synthetic labelled JPEGs (the
// Imagenet stand-in): keys "img-%05d", labels cycling over numClasses.
func BuildImageDataset(store *storage.Store, n, numClasses int, seed int64) error {
	if n <= 0 || numClasses <= 0 {
		return fmt.Errorf("dataprep: invalid dataset shape n=%d classes=%d", n, numClasses)
	}
	cfg := imgproc.DefaultSynthConfig()
	for i := 0; i < n; i++ {
		class := i % numClasses
		img := imgproc.SynthesizeImage(cfg, seed+int64(i), class)
		data, err := imgproc.EncodeJPEG(img, cfg.Quality)
		if err != nil {
			return err
		}
		if err := store.Put(storage.Object{
			Key:   fmt.Sprintf("img-%05d", i),
			Label: class,
			Data:  data,
		}); err != nil {
			return err
		}
	}
	return nil
}

// BuildAudioDataset fills the store with n synthetic labelled PCM
// streams (the Librispeech stand-in): keys "aud-%05d".
func BuildAudioDataset(store *storage.Store, n, numClasses int, seed int64) error {
	if n <= 0 || numClasses <= 0 {
		return fmt.Errorf("dataprep: invalid dataset shape n=%d classes=%d", n, numClasses)
	}
	cfg := dsp.DefaultSynthConfig()
	for i := 0; i < n; i++ {
		sig, err := dsp.SynthesizeAudio(cfg, seed+int64(i))
		if err != nil {
			return err
		}
		if err := store.Put(storage.Object{
			Key:   fmt.Sprintf("aud-%05d", i),
			Label: i % numClasses,
			Data:  dsp.PCM16Encode(sig),
		}); err != nil {
			return err
		}
	}
	return nil
}
