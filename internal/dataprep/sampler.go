package dataprep

import (
	"fmt"
	"math/rand"
)

// This file implements the order-dependent preparation operations the
// paper's footnote 3 sets aside ("shuffling, weighted sampling ... have
// dependency among items; TrainBox can support them in either data
// replication among SSDs or communication through the prep-pool
// network"): deterministic epoch shuffling and weighted sampling over
// dataset keys. Both operate on keys — cheap metadata — which is exactly
// why the paper can push them to the host or replicate them, while the
// byte-heavy per-item work stays on the FPGAs.

// ShuffleKeys returns a deterministic Fisher–Yates permutation of keys
// for the (datasetSeed, epoch) pair. Every train box shuffling with the
// same seed computes the same global order, which is how replicated
// metadata keeps shards consistent without inter-box communication.
func ShuffleKeys(keys []string, datasetSeed int64, epoch int) []string {
	out := append([]string(nil), keys...)
	rng := rand.New(rand.NewSource(SampleSeed(datasetSeed, "shuffle", epoch)))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// WeightedSampler draws keys with replacement proportionally to their
// weights, using the alias method for O(1) draws after O(n) setup.
type WeightedSampler struct {
	keys  []string
	prob  []float64
	alias []int
}

// NewWeightedSampler builds a sampler over keys with matching positive
// weights (class rebalancing, importance sampling).
func NewWeightedSampler(keys []string, weights []float64) (*WeightedSampler, error) {
	n := len(keys)
	if n == 0 {
		return nil, fmt.Errorf("dataprep: sampler needs at least one key")
	}
	if len(weights) != n {
		return nil, fmt.Errorf("dataprep: %d keys but %d weights", n, len(weights))
	}
	var total float64
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("dataprep: weight[%d] = %v must be positive", i, w)
		}
		total += w
	}
	// Vose's alias method.
	s := &WeightedSampler{
		keys:  append([]string(nil), keys...),
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	scaled := make([]float64, n)
	var small, large []int
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		s.prob[l] = scaled[l]
		s.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, i := range append(small, large...) {
		s.prob[i] = 1
		s.alias[i] = i
	}
	return s, nil
}

// Draw returns one key sampled by weight.
func (s *WeightedSampler) Draw(rng *rand.Rand) string {
	i := rng.Intn(len(s.keys))
	if rng.Float64() < s.prob[i] {
		return s.keys[i]
	}
	return s.keys[s.alias[i]]
}

// DrawBatch returns n keys sampled by weight (with replacement) for a
// deterministic (datasetSeed, epoch) pair.
func (s *WeightedSampler) DrawBatch(n int, datasetSeed int64, epoch int) []string {
	rng := rand.New(rand.NewSource(SampleSeed(datasetSeed, "weighted", epoch)))
	out := make([]string, n)
	for i := range out {
		out[i] = s.Draw(rng)
	}
	return out
}
