package dataprep

import (
	"fmt"
	"math/rand"

	"trainbox/internal/imgproc"
	"trainbox/internal/storage"
)

// VideoConfig parameterizes the video pipeline — the paper's named
// future input form, prepared as: MJPEG decode → temporal subsampling →
// one consistent spatial crop + mirror across the clip → per-frame
// tensor cast. Spatial augmentation must be clip-consistent (the same
// crop window for every frame) or the motion signal is destroyed; that
// constraint is why video preparation is modelled as a single pipeline
// rather than per-frame image preparation.
type VideoConfig struct {
	// FramesPerClip is the temporal sample count fed to the model.
	FramesPerClip int
	CropW, CropH  int
	MirrorProb    float64
	Mean, Std     []float64
	Augment       bool
}

// DefaultVideoConfig returns a 16-frame, 224×224 clip pipeline.
func DefaultVideoConfig() VideoConfig {
	return VideoConfig{
		FramesPerClip: 16,
		CropW:         imgproc.ModelSize, CropH: imgproc.ModelSize,
		MirrorProb: 0.5,
		Mean:       imgproc.ImagenetMean, Std: imgproc.ImagenetStd,
		Augment: true,
	}
}

// PrepareVideo runs the clip pipeline on stored MJPEG bytes, returning
// one tensor per sampled frame (T × [C,H,W]).
func PrepareVideo(mjpeg []byte, cfg VideoConfig, seed int64) ([]*imgproc.Tensor, error) {
	if cfg.FramesPerClip <= 0 {
		return nil, fmt.Errorf("dataprep: frames per clip %d", cfg.FramesPerClip)
	}
	clip, err := imgproc.DecodeMJPEG(mjpeg)
	if err != nil {
		return nil, err
	}
	frames, err := clip.SampleFrames(cfg.FramesPerClip)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	w, h := clip.FrameSize()
	// One crop window and one mirror decision for the whole clip.
	var x0, y0 int
	if cfg.Augment {
		if cfg.CropW > w || cfg.CropH > h {
			return nil, fmt.Errorf("dataprep: crop %dx%d larger than frames %dx%d", cfg.CropW, cfg.CropH, w, h)
		}
		x0 = rng.Intn(w - cfg.CropW + 1)
		y0 = rng.Intn(h - cfg.CropH + 1)
	} else {
		x0 = (w - cfg.CropW) / 2
		y0 = (h - cfg.CropH) / 2
	}
	mirror := cfg.Augment && rng.Float64() < cfg.MirrorProb

	out := make([]*imgproc.Tensor, len(frames))
	for i, frame := range frames {
		cropped, err := imgproc.Crop(frame, x0, y0, cfg.CropW, cfg.CropH)
		if err != nil {
			return nil, err
		}
		if mirror {
			cropped = imgproc.Mirror(cropped)
		}
		ten, err := imgproc.ToTensor(cropped, cfg.Mean, cfg.Std)
		if err != nil {
			return nil, err
		}
		out[i] = ten
	}
	return out, nil
}

// VideoPreparer is the CPU video Preparer.
type VideoPreparer struct {
	Config VideoConfig
}

// Prepare implements Preparer.
func (p VideoPreparer) Prepare(obj storage.Object, seed int64) Prepared {
	t, err := PrepareVideo(obj.Data, p.Config, seed)
	return Prepared{Key: obj.Key, Label: obj.Label, Video: t, Err: err}
}

// BuildVideoDataset fills the store with n synthetic labelled MJPEG
// clips: keys "vid-%05d".
func BuildVideoDataset(store *storage.Store, n, numClasses, framesPerClip int, seed int64) error {
	if n <= 0 || numClasses <= 0 || framesPerClip <= 0 {
		return fmt.Errorf("dataprep: invalid video dataset shape n=%d classes=%d frames=%d",
			n, numClasses, framesPerClip)
	}
	cfg := imgproc.DefaultSynthConfig()
	for i := 0; i < n; i++ {
		clip, err := imgproc.SynthesizeVideo(cfg, seed+int64(i), i%numClasses, framesPerClip)
		if err != nil {
			return err
		}
		data, err := imgproc.EncodeMJPEG(clip, cfg.Quality)
		if err != nil {
			return err
		}
		if err := store.Put(storage.Object{
			Key:   fmt.Sprintf("vid-%05d", i),
			Label: i % numClasses,
			Data:  data,
		}); err != nil {
			return err
		}
	}
	return nil
}
