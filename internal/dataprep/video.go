package dataprep

import (
	"fmt"

	"trainbox/internal/imgproc"
	"trainbox/internal/storage"
)

// VideoConfig parameterizes the video pipeline — the paper's named
// future input form, prepared as: MJPEG decode → temporal subsampling →
// one consistent spatial crop + mirror across the clip → per-frame
// tensor cast. Spatial augmentation must be clip-consistent (the same
// crop window for every frame) or the motion signal is destroyed; that
// constraint is why video preparation is modelled as a single pipeline
// rather than per-frame image preparation.
type VideoConfig struct {
	// FramesPerClip is the temporal sample count fed to the model.
	FramesPerClip int
	CropW, CropH  int
	MirrorProb    float64
	Mean, Std     []float64
	Augment       bool
}

// DefaultVideoConfig returns a 16-frame, 224×224 clip pipeline.
func DefaultVideoConfig() VideoConfig {
	return VideoConfig{
		FramesPerClip: 16,
		CropW:         imgproc.ModelSize, CropH: imgproc.ModelSize,
		MirrorProb: 0.5,
		Mean:       imgproc.ImagenetMean, Std: imgproc.ImagenetStd,
		Augment: true,
	}
}

// PrepareVideo runs the clip pipeline on stored MJPEG bytes, returning
// one tensor per sampled frame (T × [C,H,W]). Shim over
// PrepareVideoScratch with a throwaway working set, so the caller owns
// the result outright.
func PrepareVideo(mjpeg []byte, cfg VideoConfig, seed int64) ([]*imgproc.Tensor, error) {
	return PrepareVideoScratch(mjpeg, cfg, seed, nil)
}

// VideoPreparer is the CPU video Preparer.
type VideoPreparer struct {
	Config VideoConfig
}

// Prepare implements Preparer.
func (p VideoPreparer) Prepare(obj storage.Object, seed int64) Prepared {
	t, err := PrepareVideo(obj.Data, p.Config, seed)
	return Prepared{Key: obj.Key, Label: obj.Label, Video: t, Err: err}
}

// BuildVideoDataset fills the store with n synthetic labelled MJPEG
// clips: keys "vid-%05d".
func BuildVideoDataset(store *storage.Store, n, numClasses, framesPerClip int, seed int64) error {
	if n <= 0 || numClasses <= 0 || framesPerClip <= 0 {
		return fmt.Errorf("dataprep: invalid video dataset shape n=%d classes=%d frames=%d",
			n, numClasses, framesPerClip)
	}
	cfg := imgproc.DefaultSynthConfig()
	for i := 0; i < n; i++ {
		clip, err := imgproc.SynthesizeVideo(cfg, seed+int64(i), i%numClasses, framesPerClip)
		if err != nil {
			return err
		}
		data, err := imgproc.EncodeMJPEG(clip, cfg.Quality)
		if err != nil {
			return err
		}
		if err := store.Put(storage.Object{
			Key:   fmt.Sprintf("vid-%05d", i),
			Label: i % numClasses,
			Data:  data,
		}); err != nil {
			return err
		}
	}
	return nil
}
