package dataprep

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestShuffleKeysIsDeterministicPermutation(t *testing.T) {
	keys := make([]string, 50)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%02d", i)
	}
	a := ShuffleKeys(keys, 1, 0)
	b := ShuffleKeys(keys, 1, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same (seed, epoch) gave different shuffles")
		}
	}
	c := ShuffleKeys(keys, 1, 1)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different epochs gave identical shuffles")
	}
	// Permutation: sorted content unchanged.
	sortedA := append([]string(nil), a...)
	sort.Strings(sortedA)
	for i := range keys {
		if sortedA[i] != keys[i] {
			t.Fatal("shuffle lost or duplicated keys")
		}
	}
	// Input untouched.
	if keys[0] != "k00" || keys[49] != "k49" {
		t.Error("ShuffleKeys modified its input")
	}
}

func TestShuffleKeysPropertyPermutation(t *testing.T) {
	f := func(seed int64, epoch uint8, n uint8) bool {
		keys := make([]string, int(n%40)+1)
		for i := range keys {
			keys[i] = fmt.Sprintf("x%03d", i)
		}
		out := ShuffleKeys(keys, seed, int(epoch))
		if len(out) != len(keys) {
			return false
		}
		seen := map[string]bool{}
		for _, k := range out {
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return len(seen) == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWeightedSamplerValidation(t *testing.T) {
	if _, err := NewWeightedSampler(nil, nil); err == nil {
		t.Error("empty sampler accepted")
	}
	if _, err := NewWeightedSampler([]string{"a"}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewWeightedSampler([]string{"a", "b"}, []float64{1, 0}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewWeightedSampler([]string{"a"}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestWeightedSamplerFrequenciesMatchWeights(t *testing.T) {
	keys := []string{"a", "b", "c"}
	weights := []float64{1, 2, 7}
	s, err := NewWeightedSampler(keys, weights)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 200000
	rng := rand.New(rand.NewSource(5))
	counts := map[string]int{}
	for i := 0; i < draws; i++ {
		counts[s.Draw(rng)]++
	}
	for i, k := range keys {
		want := weights[i] / 10
		got := float64(counts[k]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%s frequency = %.4f, want %.4f", k, got, want)
		}
	}
}

func TestWeightedSamplerUniformSpecialCase(t *testing.T) {
	keys := []string{"a", "b", "c", "d"}
	s, err := NewWeightedSampler(keys, []float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	counts := map[string]int{}
	for i := 0; i < 40000; i++ {
		counts[s.Draw(rng)]++
	}
	for _, k := range keys {
		got := float64(counts[k]) / 40000
		if math.Abs(got-0.25) > 0.01 {
			t.Errorf("%s frequency = %.4f, want 0.25", k, got)
		}
	}
}

func TestDrawBatchDeterministic(t *testing.T) {
	s, err := NewWeightedSampler([]string{"a", "b"}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	x := s.DrawBatch(32, 7, 0)
	y := s.DrawBatch(32, 7, 0)
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("DrawBatch not deterministic")
		}
	}
	z := s.DrawBatch(32, 7, 1)
	same := true
	for i := range x {
		if x[i] != z[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different epochs gave identical batches")
	}
	if len(s.DrawBatch(0, 1, 0)) != 0 {
		t.Error("zero draw batch should be empty")
	}
}

// TestWeightedSamplerPropertyOnlyKnownKeys: every drawn key must be one
// of the sampler's keys.
func TestWeightedSamplerPropertyOnlyKnownKeys(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		k := int(n%8) + 1
		keys := make([]string, k)
		weights := make([]float64, k)
		rng := rand.New(rand.NewSource(seed))
		valid := map[string]bool{}
		for i := range keys {
			keys[i] = fmt.Sprintf("w%d", i)
			weights[i] = 0.1 + rng.Float64()*5
			valid[keys[i]] = true
		}
		s, err := NewWeightedSampler(keys, weights)
		if err != nil {
			return false
		}
		for _, drawn := range s.DrawBatch(50, seed, 0) {
			if !valid[drawn] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
