package dataprep

import (
	"testing"

	"trainbox/internal/storage"
	"trainbox/internal/workload"
)

// TestRealKernelRatioMatchesCalibration cross-checks the measured Go
// kernels against the model constants: absolute speeds differ (Go vs
// DALI-class C/CUDA — documented in DESIGN.md), but the *relative* cost
// of audio vs image preparation should land in the same regime, because
// that ratio is algorithmic (many small FFTs vs one JPEG decode), not an
// implementation detail. The calibrated ratio is ≈6.9 (TF-SR 5.45 ms vs
// ResNet-50 0.788 ms); the measured Go ratio must fall within a broad
// band around it.
func TestRealKernelRatioMatchesCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel profiling in -short mode")
	}
	if raceEnabled {
		t.Skip("kernel cost ratios are meaningless under race-detector instrumentation")
	}
	imgStore := storage.NewStore(storage.DefaultSSDSpec())
	if err := BuildImageDataset(imgStore, 6, 3, 1); err != nil {
		t.Fatal(err)
	}
	audStore := storage.NewStore(storage.DefaultSSDSpec())
	if err := BuildAudioDataset(audStore, 3, 3, 1); err != nil {
		t.Fatal(err)
	}
	imgExec := NewExecutor(ImagePreparer{Config: DefaultImageConfig()}, 1, 1)
	audExec := NewExecutor(AudioPreparer{Config: DefaultAudioConfig()}, 1, 1)
	imgRes, err := imgExec.Profile(imgStore, imgStore.Keys(), 12)
	if err != nil {
		t.Fatal(err)
	}
	audRes, err := audExec.Profile(audStore, audStore.Keys(), 6)
	if err != nil {
		t.Fatal(err)
	}
	measured := float64(audRes.PerSample) / float64(imgRes.PerSample)

	img, _ := workload.ByName("Resnet-50")
	aud, _ := workload.ByName("TF-SR")
	calibrated := aud.Prep.TotalCPUSeconds() / img.Prep.TotalCPUSeconds()

	// Same regime: within 3× either way (CI machines vary widely).
	if measured < calibrated/3 || measured > calibrated*3 {
		t.Errorf("measured audio/image cost ratio = %.1f, calibrated = %.1f — outside the 3× band",
			measured, calibrated)
	}
	t.Logf("audio/image per-sample cost: measured %.1f×, calibrated %.1f×", measured, calibrated)
}
