package dataprep

import (
	"fmt"
	"sync"

	"trainbox/internal/storage"
)

// Prefetcher implements next-batch prefetching, the overlap mechanism at
// the heart of the paper's pipeline (Section II-B: "the data preparation
// of the next batch does not depend on the results of the current batch
// ... the overhead of data preparation can be hidden"): while the
// consumer trains on batch i, the prefetcher prepares batches i+1..i+d
// in the background, d being the pipeline depth.
//
// Batches are delivered strictly in order. Close the prefetcher to stop
// the background work; Next returns an error after the epoch schedule is
// exhausted or the pipeline fails.
type Prefetcher struct {
	exec  *Executor
	store *storage.Store

	out    chan prefetched
	cancel chan struct{}
	wg     sync.WaitGroup
	closed bool
}

type prefetched struct {
	batch []Prepared
	epoch int
	err   error
}

// Batch is one delivered batch with its epoch index.
type Batch struct {
	Epoch   int
	Samples []Prepared
}

// NewPrefetcher starts preparing epochs [0, epochs) of the given keys
// with the executor, keeping up to depth batches buffered ahead of the
// consumer. depth must be ≥ 1 (the paper's double buffering is depth 1).
func NewPrefetcher(exec *Executor, store *storage.Store, keys []string, epochs, depth int) (*Prefetcher, error) {
	if exec == nil || store == nil {
		return nil, fmt.Errorf("dataprep: prefetcher needs an executor and a store")
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("dataprep: prefetcher needs at least one key")
	}
	if epochs < 1 || depth < 1 {
		return nil, fmt.Errorf("dataprep: prefetcher needs epochs ≥ 1 and depth ≥ 1, got %d/%d", epochs, depth)
	}
	p := &Prefetcher{
		exec:   exec,
		store:  store,
		out:    make(chan prefetched, depth),
		cancel: make(chan struct{}),
	}
	keysCopy := append([]string(nil), keys...)
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(p.out)
		for epoch := 0; epoch < epochs; epoch++ {
			batch, err := exec.PrepareBatch(store, keysCopy, epoch)
			select {
			case p.out <- prefetched{batch: batch, epoch: epoch, err: err}:
				if err != nil {
					return
				}
			case <-p.cancel:
				return
			}
		}
	}()
	return p, nil
}

// Next blocks until the next batch is ready and returns it. After the
// last scheduled epoch it returns ErrExhausted.
func (p *Prefetcher) Next() (Batch, error) {
	pf, ok := <-p.out
	if !ok {
		return Batch{}, ErrExhausted
	}
	if pf.err != nil {
		return Batch{}, pf.err
	}
	return Batch{Epoch: pf.epoch, Samples: pf.batch}, nil
}

// ErrExhausted is returned by Next once every scheduled epoch has been
// delivered.
var ErrExhausted = fmt.Errorf("dataprep: prefetcher exhausted")

// Close stops background preparation and waits for the worker to exit.
// It is safe to call multiple times and after exhaustion.
func (p *Prefetcher) Close() {
	if p.closed {
		return
	}
	p.closed = true
	close(p.cancel)
	// Drain so the worker's pending send cannot block.
	go func() {
		for range p.out { //nolint:revive // drain
		}
	}()
	p.wg.Wait()
}
