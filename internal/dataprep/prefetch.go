package dataprep

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"trainbox/internal/metrics"
	"trainbox/internal/pipeline"
	"trainbox/internal/storage"
)

// Prefetcher implements next-batch prefetching, the overlap mechanism at
// the heart of the paper's pipeline (Section II-B: "the data preparation
// of the next batch does not depend on the results of the current batch
// ... the overhead of data preparation can be hidden"): while the
// consumer trains on batch i, the prefetcher prepares batches i+1..i+d
// in the background, d being the pipeline depth.
//
// It is a thin adapter over the staged-pipeline runtime: an epoch
// schedule feeds a single prepare stage whose bounded output queue (cap
// = depth) is the prefetch buffer; each prepared batch is itself the
// product of the executor's fetch→prepare pipeline. Cancellation is
// context-based end to end — Close cancels the pipeline and waits for
// every goroutine to drain.
//
// Batches are delivered strictly in order. Close the prefetcher to stop
// the background work; Next returns an error after the epoch schedule is
// exhausted or the pipeline fails.
type Prefetcher struct {
	run    *pipeline.Run
	cancel context.CancelFunc

	closeOnce sync.Once
	closed    atomic.Bool

	mBatches *metrics.Counter // dataprep.prefetch.batches_delivered
	mDepth   *metrics.Gauge   // dataprep.prefetch.queue_depth
}

// Batch is one delivered batch with its epoch index.
type Batch struct {
	Epoch   int
	Samples []Prepared
}

// PrefetchOption configures a Prefetcher at construction time.
type PrefetchOption func(*prefetchConfig) error

type prefetchConfig struct {
	depth int
	reg   *metrics.Registry
}

// WithDepth sets how many batches the prefetcher keeps buffered ahead
// of the consumer. The default, 1, is the paper's double buffering;
// deeper queues absorb jittery prepare latency at the cost of memory.
func WithDepth(n int) PrefetchOption {
	return func(c *prefetchConfig) error {
		if n < 1 {
			return fmt.Errorf("dataprep: prefetch depth must be ≥ 1, got %d", n)
		}
		c.depth = n
		return nil
	}
}

// WithMetrics routes the prefetcher's series ("dataprep.prefetch.*" and
// the pipeline's "pipeline.prefetch.*") to reg instead of the
// executor's registry.
func WithMetrics(reg *metrics.Registry) PrefetchOption {
	return func(c *prefetchConfig) error {
		if reg == nil {
			return fmt.Errorf("dataprep: WithMetrics needs a non-nil registry")
		}
		c.reg = reg
		return nil
	}
}

// NewPrefetcher starts preparing epochs [0, epochs) of the given keys
// with the executor, keeping up to WithDepth batches (default 1)
// buffered ahead of the consumer.
func NewPrefetcher(exec *Executor, store *storage.Store, keys []string, epochs int, opts ...PrefetchOption) (*Prefetcher, error) {
	if exec == nil || store == nil {
		return nil, fmt.Errorf("dataprep: prefetcher needs an executor and a store")
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("dataprep: prefetcher needs at least one key")
	}
	if epochs < 1 {
		return nil, fmt.Errorf("dataprep: prefetcher needs epochs ≥ 1, got %d", epochs)
	}
	// By default the prefetcher inherits the executor's registry: its
	// prepare stage reports under "pipeline.prefetch.*", and batch
	// delivery under "dataprep.prefetch.*". With an unmetered executor
	// both are no-ops.
	cfg := prefetchConfig{depth: 1, reg: exec.reg}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("dataprep: nil PrefetchOption")
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	keysCopy := append([]string(nil), keys...)
	prepare := pipeline.NewStage("prepare", 1, cfg.depth,
		func(ctx context.Context, epoch int) (Batch, error) {
			samples, err := exec.PrepareBatchContext(ctx, store, keysCopy, epoch)
			if err != nil {
				return Batch{}, err
			}
			return Batch{Epoch: epoch, Samples: samples}, nil
		})
	pl, err := pipeline.New("prefetch", prepare)
	if err != nil {
		return nil, err
	}
	// Close discards buffered batches; recycle their pooled output
	// buffers into the executor instead of leaking one batch per depth.
	pl.WithDiscard(func(v any) {
		if b, ok := v.(Batch); ok {
			exec.Recycle(b.Samples...)
		}
	})
	ctx, cancel := context.WithCancel(context.Background())
	return &Prefetcher{
		run:      pl.WithMetrics(cfg.reg).Run(ctx, pipeline.IndexSource(epochs)),
		cancel:   cancel,
		mBatches: cfg.reg.Counter("dataprep.prefetch.batches_delivered"),
		mDepth:   cfg.reg.Gauge("dataprep.prefetch.queue_depth"),
	}, nil
}

// NewPrefetcherDepth is the pre-options constructor.
//
// Deprecated: use NewPrefetcher with WithDepth.
func NewPrefetcherDepth(exec *Executor, store *storage.Store, keys []string, epochs, depth int) (*Prefetcher, error) {
	return NewPrefetcher(exec, store, keys, epochs, WithDepth(depth))
}

// Next blocks until the next batch is ready and returns it. After the
// last scheduled epoch it returns ErrExhausted; after Close it returns
// ErrClosed; after a pipeline failure it returns that error. The two
// sentinels are distinct so consumers can tell a finished schedule
// ("train is done") from a shut-down prefetcher ("someone stopped us").
func (p *Prefetcher) Next() (Batch, error) {
	v, ok := <-p.run.Out()
	if !ok {
		if p.closed.Load() {
			return Batch{}, ErrClosed
		}
		if err := p.run.Err(); err != nil {
			return Batch{}, err
		}
		return Batch{}, ErrExhausted
	}
	p.mBatches.Inc()
	p.mDepth.SetInt(int64(p.run.Stats()[0].QueueLen))
	return v.(Batch), nil
}

// Stats returns the prefetch pipeline's per-stage counters; the prepare
// stage's queue occupancy shows how far ahead of the consumer the
// prefetcher is running.
func (p *Prefetcher) Stats() []pipeline.StageStats {
	return p.run.Stats()
}

// ErrExhausted is returned by Next once every scheduled epoch has been
// delivered.
var ErrExhausted = fmt.Errorf("dataprep: prefetcher exhausted")

// ErrClosed is returned by Next after Close, regardless of how many
// epochs were still scheduled.
var ErrClosed = fmt.Errorf("dataprep: prefetcher closed")

// Close stops background preparation, discards buffered batches, and
// waits for every pipeline goroutine to exit. It is safe to call
// multiple times, concurrently, and after exhaustion.
func (p *Prefetcher) Close() {
	p.closeOnce.Do(func() {
		p.closed.Store(true)
		p.cancel()
		p.run.Stop()
	})
}
