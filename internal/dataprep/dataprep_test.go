package dataprep

import (
	"math"
	"testing"

	"trainbox/internal/imgproc"
	"trainbox/internal/storage"
)

func imageStore(t *testing.T, n int) *storage.Store {
	t.Helper()
	s := storage.NewStore(storage.DefaultSSDSpec())
	if err := BuildImageDataset(s, n, 10, 1); err != nil {
		t.Fatal(err)
	}
	return s
}

func audioStore(t *testing.T, n int) *storage.Store {
	t.Helper()
	s := storage.NewStore(storage.DefaultSSDSpec())
	if err := BuildAudioDataset(s, n, 10, 1); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildImageDataset(t *testing.T) {
	s := imageStore(t, 12)
	if s.Len() != 12 {
		t.Fatalf("Len = %d", s.Len())
	}
	obj, err := s.Get("img-00003")
	if err != nil {
		t.Fatal(err)
	}
	if obj.Label != 3 {
		t.Errorf("label = %d, want 3", obj.Label)
	}
	if _, err := imgproc.DecodeJPEG(obj.Data); err != nil {
		t.Errorf("stored object is not valid JPEG: %v", err)
	}
	if err := BuildImageDataset(s, 0, 10, 1); err == nil {
		t.Error("zero-size dataset accepted")
	}
}

func TestBuildAudioDataset(t *testing.T) {
	s := audioStore(t, 4)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.MeanObjectSize() < 200_000 {
		t.Errorf("mean audio object = %v, want ≈223 KB", s.MeanObjectSize())
	}
	if err := BuildAudioDataset(s, 3, 0, 1); err == nil {
		t.Error("zero classes accepted")
	}
}

func TestPrepareImageShapes(t *testing.T) {
	s := imageStore(t, 1)
	obj, _ := s.Get("img-00000")
	cfg := DefaultImageConfig()
	ten, err := PrepareImage(obj.Data, cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ten.C != 3 || ten.H != 224 || ten.W != 224 {
		t.Errorf("tensor shape %dx%dx%d", ten.C, ten.H, ten.W)
	}
	if ten.Bytes() != 602112 {
		t.Errorf("tensor bytes = %d", ten.Bytes())
	}
}

func TestPrepareImageDeterministicPerSeed(t *testing.T) {
	s := imageStore(t, 1)
	obj, _ := s.Get("img-00000")
	cfg := DefaultImageConfig()
	a, err := PrepareImage(obj.Data, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PrepareImage(obj.Data, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed produced different tensors")
		}
	}
	c, err := PrepareImage(obj.Data, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical augmented tensors")
	}
}

func TestPrepareImageWithoutAugmentIsSeedIndependent(t *testing.T) {
	s := imageStore(t, 1)
	obj, _ := s.Get("img-00000")
	cfg := DefaultImageConfig()
	cfg.Augment = false
	a, _ := PrepareImage(obj.Data, cfg, 1)
	b, _ := PrepareImage(obj.Data, cfg, 999)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("non-augmented pipeline depends on seed")
		}
	}
}

func TestPrepareImageRejectsGarbage(t *testing.T) {
	if _, err := PrepareImage([]byte("junk"), DefaultImageConfig(), 1); err == nil {
		t.Error("garbage JPEG accepted")
	}
}

func TestPrepareAudioShapes(t *testing.T) {
	s := audioStore(t, 1)
	obj, _ := s.Get("aud-00000")
	cfg := DefaultAudioConfig()
	mel, err := PrepareAudio(obj.Data, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mel.Bins != cfg.Mel.NumMels {
		t.Errorf("bins = %d, want %d", mel.Bins, cfg.Mel.NumMels)
	}
	if mel.Frames < 600 { // ~6.96 s at 10 ms hop ≈ 694 frames
		t.Errorf("frames = %d, want ≈694", mel.Frames)
	}
	// Normalized output: mean ≈ 0.
	var mean float64
	for _, v := range mel.Data {
		mean += v
	}
	mean /= float64(len(mel.Data))
	if math.Abs(mean) > 1e-9 {
		t.Errorf("normalized mean = %v", mean)
	}
}

func TestPrepareAudioDeterministicPerSeed(t *testing.T) {
	s := audioStore(t, 1)
	obj, _ := s.Get("aud-00000")
	cfg := DefaultAudioConfig()
	a, _ := PrepareAudio(obj.Data, cfg, 5)
	b, _ := PrepareAudio(obj.Data, cfg, 5)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed produced different spectrograms")
		}
	}
}

func TestPrepareAudioRejectsOddPCM(t *testing.T) {
	if _, err := PrepareAudio([]byte{1, 2, 3}, DefaultAudioConfig(), 1); err == nil {
		t.Error("odd PCM accepted")
	}
}

func TestSampleSeedStableAndDistinct(t *testing.T) {
	a := SampleSeed(1, "img-00001", 0)
	if a != SampleSeed(1, "img-00001", 0) {
		t.Error("SampleSeed not deterministic")
	}
	distinct := map[int64]bool{a: true}
	for _, v := range []int64{
		SampleSeed(1, "img-00001", 1),
		SampleSeed(1, "img-00002", 0),
		SampleSeed(2, "img-00001", 0),
	} {
		if distinct[v] {
			t.Error("SampleSeed collision across distinct inputs")
		}
		distinct[v] = true
	}
}

func TestExecutorPrepareBatchOrderAndParallelism(t *testing.T) {
	s := imageStore(t, 16)
	keys := s.Keys()
	serial := NewExecutor(ImagePreparer{Config: DefaultImageConfig()}, 1, 1)
	parallel := NewExecutor(ImagePreparer{Config: DefaultImageConfig()}, 8, 1)
	a, err := serial.PrepareBatch(s, keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.PrepareBatch(s, keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 16 || len(b) != 16 {
		t.Fatal("batch size wrong")
	}
	for i := range a {
		if a[i].Key != keys[i] || b[i].Key != keys[i] {
			t.Fatal("batch order not preserved")
		}
		for j := range a[i].Image.Data {
			if a[i].Image.Data[j] != b[i].Image.Data[j] {
				t.Fatal("parallel executor diverges from serial")
			}
		}
	}
}

func TestExecutorEpochChangesAugmentation(t *testing.T) {
	s := imageStore(t, 2)
	e := NewExecutor(ImagePreparer{Config: DefaultImageConfig()}, 2, 1)
	a, _ := e.PrepareBatch(s, s.Keys(), 0)
	b, _ := e.PrepareBatch(s, s.Keys(), 1)
	same := true
	for j := range a[0].Image.Data {
		if a[0].Image.Data[j] != b[0].Image.Data[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("epoch 0 and 1 produced identical augmentations")
	}
}

func TestExecutorPropagatesMissingKey(t *testing.T) {
	s := imageStore(t, 2)
	e := NewExecutor(ImagePreparer{Config: DefaultImageConfig()}, 2, 1)
	if _, err := e.PrepareBatch(s, []string{"img-00000", "missing"}, 0); err == nil {
		t.Error("missing key accepted")
	}
}

func TestAudioExecutorEndToEnd(t *testing.T) {
	s := audioStore(t, 3)
	e := NewExecutor(AudioPreparer{Config: DefaultAudioConfig()}, 3, 7)
	out, err := e.PrepareBatch(s, s.Keys(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range out {
		if p.Audio == nil || p.Image != nil {
			t.Fatal("audio batch produced wrong sample kind")
		}
	}
}

func TestProfileMeasuresThroughput(t *testing.T) {
	s := imageStore(t, 4)
	e := NewExecutor(ImagePreparer{Config: DefaultImageConfig()}, 4, 1)
	res, err := e.Profile(s, s.Keys(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples < 8 || res.SamplesPerSec <= 0 || res.Workers != 4 {
		t.Errorf("profile = %+v", res)
	}
	if res.String() == "" {
		t.Error("empty String()")
	}
	if _, err := e.Profile(s, nil, 1); err == nil {
		t.Error("empty key profile accepted")
	}
}
