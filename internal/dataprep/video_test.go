package dataprep

import (
	"testing"

	"trainbox/internal/storage"
)

func videoStore(t *testing.T, n, frames int) *storage.Store {
	t.Helper()
	s := storage.NewStore(storage.DefaultSSDSpec())
	if err := BuildVideoDataset(s, n, 3, frames, 9); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildVideoDataset(t *testing.T) {
	s := videoStore(t, 3, 8)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	obj, err := s.Get("vid-00001")
	if err != nil {
		t.Fatal(err)
	}
	if obj.Label != 1 {
		t.Errorf("label = %d", obj.Label)
	}
	if err := BuildVideoDataset(s, 0, 3, 8, 1); err == nil {
		t.Error("zero clips accepted")
	}
	if err := BuildVideoDataset(s, 1, 3, 0, 1); err == nil {
		t.Error("zero frames accepted")
	}
}

func TestPrepareVideoShapes(t *testing.T) {
	s := videoStore(t, 1, 16)
	obj, _ := s.Get("vid-00000")
	cfg := DefaultVideoConfig()
	cfg.FramesPerClip = 8
	tensors, err := PrepareVideo(obj.Data, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tensors) != 8 {
		t.Fatalf("tensors = %d", len(tensors))
	}
	for _, ten := range tensors {
		if ten.C != 3 || ten.H != 224 || ten.W != 224 {
			t.Fatalf("tensor shape %dx%dx%d", ten.C, ten.H, ten.W)
		}
	}
}

func TestPrepareVideoClipConsistentAugmentation(t *testing.T) {
	// All frames of a clip share one crop window: static background
	// pixels must be identical across frames except where the moving
	// shape passes. Verify by preparing the same clip twice with the
	// same seed (deterministic) and once with a different seed
	// (different window).
	s := videoStore(t, 1, 8)
	obj, _ := s.Get("vid-00000")
	cfg := DefaultVideoConfig()
	cfg.FramesPerClip = 4
	a, err := PrepareVideo(obj.Data, cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PrepareVideo(obj.Data, cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	for f := range a {
		for i := range a[f].Data {
			if a[f].Data[i] != b[f].Data[i] {
				t.Fatal("same seed produced different clips")
			}
		}
	}
	c, err := PrepareVideo(obj.Data, cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a[0].Data {
		if a[0].Data[i] != c[0].Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical augmented clips")
	}
}

func TestPrepareVideoCenterCropWithoutAugment(t *testing.T) {
	s := videoStore(t, 1, 8)
	obj, _ := s.Get("vid-00000")
	cfg := DefaultVideoConfig()
	cfg.FramesPerClip = 2
	cfg.Augment = false
	a, err := PrepareVideo(obj.Data, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PrepareVideo(obj.Data, cfg, 999)
	if err != nil {
		t.Fatal(err)
	}
	for f := range a {
		for i := range a[f].Data {
			if a[f].Data[i] != b[f].Data[i] {
				t.Fatal("non-augmented video pipeline depends on seed")
			}
		}
	}
}

func TestPrepareVideoErrors(t *testing.T) {
	if _, err := PrepareVideo([]byte("junk"), DefaultVideoConfig(), 1); err == nil {
		t.Error("garbage clip accepted")
	}
	s := videoStore(t, 1, 4)
	obj, _ := s.Get("vid-00000")
	cfg := DefaultVideoConfig()
	cfg.FramesPerClip = 0
	if _, err := PrepareVideo(obj.Data, cfg, 1); err == nil {
		t.Error("zero frames-per-clip accepted")
	}
	cfg = DefaultVideoConfig()
	cfg.FramesPerClip = 99
	if _, err := PrepareVideo(obj.Data, cfg, 1); err == nil {
		t.Error("oversampling accepted")
	}
	cfg = DefaultVideoConfig()
	cfg.FramesPerClip = 2
	cfg.CropW = 999
	if _, err := PrepareVideo(obj.Data, cfg, 1); err == nil {
		t.Error("oversized crop accepted")
	}
}

func TestVideoPreparerThroughExecutor(t *testing.T) {
	s := videoStore(t, 4, 8)
	cfg := DefaultVideoConfig()
	cfg.FramesPerClip = 4
	e := NewExecutor(VideoPreparer{Config: cfg}, 2, 9)
	batch, err := e.PrepareBatch(s, s.Keys(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range batch {
		if len(p.Video) != 4 || p.Image != nil || p.Audio != nil {
			t.Fatalf("wrong sample kind: %+v", p.Key)
		}
	}
}
