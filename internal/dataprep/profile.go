package dataprep

import (
	"fmt"
	"time"

	"trainbox/internal/storage"
)

// ProfileResult is the measured cost of one pipeline on this machine —
// the reproduction's analogue of the paper's prototype profiling
// (Section VI-A: "we built a performance model of TrainBox by profiling
// the prototype").
type ProfileResult struct {
	Samples       int
	Elapsed       time.Duration
	PerSample     time.Duration
	SamplesPerSec float64
	Workers       int
}

// String renders the result for reports.
func (r ProfileResult) String() string {
	return fmt.Sprintf("%d samples in %v (%.0f samples/s, %v/sample, %d workers)",
		r.Samples, r.Elapsed.Round(time.Millisecond), r.SamplesPerSec, r.PerSample.Round(time.Microsecond), r.Workers)
}

// Profile measures wall-clock throughput of the executor over the keyed
// objects, repeating epochs until at least minSamples samples have been
// prepared.
func (e *Executor) Profile(store *storage.Store, keys []string, minSamples int) (ProfileResult, error) {
	if len(keys) == 0 {
		return ProfileResult{}, fmt.Errorf("dataprep: no keys to profile")
	}
	start := time.Now()
	done := 0
	epoch := 0
	for done < minSamples {
		if _, err := e.PrepareBatch(store, keys, epoch); err != nil {
			return ProfileResult{}, err
		}
		done += len(keys)
		epoch++
	}
	elapsed := time.Since(start)
	return ProfileResult{
		Samples:       done,
		Elapsed:       elapsed,
		PerSample:     elapsed / time.Duration(done),
		SamplesPerSec: float64(done) / elapsed.Seconds(),
		Workers:       e.workers,
	}, nil
}
