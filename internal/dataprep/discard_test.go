package dataprep

import (
	"context"
	"testing"

	"trainbox/internal/storage"
)

// TestPrepareBatchCancelRecyclesOutputs: a batch cancelled mid-flight
// must return every pooled output buffer it produced — the executor's
// discard hook closes the loop the consumer never got to.
func TestPrepareBatchCancelRecyclesOutputs(t *testing.T) {
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := BuildImageDataset(store, 24, 4, 1); err != nil {
		t.Fatal(err)
	}
	exec := NewExecutor(ImagePreparer{Config: DefaultImageConfig()}, 4, 1)
	keys := store.Keys()
	for trial := 0; trial < 6; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			out, err := exec.PrepareBatchContext(ctx, store, keys, trial)
			if err == nil {
				// The batch won the race against cancel — recycle like a
				// well-behaved consumer and move on.
				exec.Recycle(out...)
			}
		}()
		cancel()
		<-done
		st := exec.OutputStats()
		if st.Gets != st.Puts {
			t.Fatalf("trial %d: output buffers leaked on cancel: Gets=%d Puts=%d News=%d",
				trial, st.Gets, st.Puts, st.News)
		}
	}
}

// TestPrefetcherCloseRecyclesBufferedBatches: Close discards batches
// buffered ahead of the consumer; their pooled buffers must flow back.
func TestPrefetcherCloseRecyclesBufferedBatches(t *testing.T) {
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := BuildImageDataset(store, 8, 4, 1); err != nil {
		t.Fatal(err)
	}
	exec := NewExecutor(ImagePreparer{Config: DefaultImageConfig()}, 2, 1)
	pf, err := NewPrefetcher(exec, store, store.Keys(), 6, WithDepth(3))
	if err != nil {
		t.Fatal(err)
	}
	// Consume one batch so the prefetcher is warmed up and has depth
	// buffered, then close with the rest in flight.
	b, err := pf.Next()
	if err != nil {
		t.Fatal(err)
	}
	exec.Recycle(b.Samples...)
	pf.Close()
	st := exec.OutputStats()
	if st.Gets != st.Puts {
		t.Fatalf("prefetcher close leaked output buffers: Gets=%d Puts=%d News=%d",
			st.Gets, st.Puts, st.News)
	}
}
