package dataprep

import (
	"testing"

	"trainbox/internal/metrics"
	"trainbox/internal/storage"
)

// TestExecutorAndPrefetcherMetrics: a metered executor must report
// sample counts, per-sample latency, and pipeline stage series, and a
// prefetcher built on it must inherit the registry and report delivery
// counters and queue depth.
func TestExecutorAndPrefetcherMetrics(t *testing.T) {
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := BuildImageDataset(store, 6, 3, 7); err != nil {
		t.Fatal(err)
	}
	keys := store.Keys()
	cfg := DefaultImageConfig()
	cfg.CropW, cfg.CropH = 32, 32

	reg := metrics.NewRegistry()
	store.WithMetrics(reg)
	exec := NewExecutor(ImagePreparer{Config: cfg}, 2, 7).WithMetrics(reg)

	const epochs = 3
	pf, err := NewPrefetcher(exec, store, keys, epochs, WithDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	batches := 0
	for {
		if _, err := pf.Next(); err != nil {
			if err != ErrExhausted {
				t.Fatal(err)
			}
			break
		}
		batches++
	}
	if batches != epochs {
		t.Fatalf("delivered %d batches, want %d", batches, epochs)
	}

	snap := reg.Snapshot()
	wantSamples := int64(epochs * len(keys))
	if got := snap.Counters["dataprep.executor.samples_prepared"]; got != wantSamples {
		t.Errorf("dataprep.executor.samples_prepared = %d, want %d", got, wantSamples)
	}
	if got := snap.Counters["dataprep.executor.batches_prepared"]; got != epochs {
		t.Errorf("dataprep.executor.batches_prepared = %d, want %d", got, epochs)
	}
	if got := snap.Counters["dataprep.prefetch.batches_delivered"]; got != epochs {
		t.Errorf("prefetch.batches_delivered = %d, want %d", got, epochs)
	}
	perSample := snap.Histograms["dataprep.executor.ns_per_sample"]
	if perSample.Count != epochs || perSample.Mean <= 0 {
		t.Errorf("ns_per_sample = %+v, want %d positive batch observations", perSample, epochs)
	}
	if got := snap.Counters["pipeline.dataprep.prepare.items"]; got != wantSamples {
		t.Errorf("pipeline prepare items = %d, want %d", got, wantSamples)
	}
	if got := snap.Counters["pipeline.prefetch.prepare.items"]; got != epochs {
		t.Errorf("pipeline prefetch items = %d, want %d", got, epochs)
	}
	if snap.Counters["storage.nvme.bytes_read"] != int64(store.UsedBytes())*epochs {
		t.Errorf("storage bytes_read = %d, want %d", snap.Counters["storage.nvme.bytes_read"], int64(store.UsedBytes())*epochs)
	}
	if snap.Meters["dataprep.executor.samples"].Count != wantSamples {
		t.Errorf("sample meter count = %d, want %d", snap.Meters["dataprep.executor.samples"].Count, wantSamples)
	}
}

// TestUnmeteredExecutorPaysNothing: without WithMetrics everything still
// works and no series exist anywhere to leak into.
func TestUnmeteredExecutorPaysNothing(t *testing.T) {
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := BuildImageDataset(store, 4, 2, 7); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultImageConfig()
	cfg.CropW, cfg.CropH = 32, 32
	exec := NewExecutor(ImagePreparer{Config: cfg}, 2, 7)
	if _, err := exec.PrepareBatch(store, store.Keys(), 0); err != nil {
		t.Fatal(err)
	}
	pf, err := NewPrefetcher(exec, store, store.Keys(), 1, WithDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if _, err := pf.Next(); err != nil {
		t.Fatal(err)
	}
}
