package dataprep

import (
	"math"
	"testing"
)

func TestPrepareRICAPBatchShapesAndSoftLabels(t *testing.T) {
	s := imageStore(t, 8)
	cfg := DefaultRICAPConfig()
	cfg.OutW, cfg.OutH = 128, 128
	batch, err := PrepareRICAPBatch(s, s.Keys(), 3, cfg, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("batch = %d", len(batch))
	}
	for i, sample := range batch {
		if sample.Tensor.H != 128 || sample.Tensor.W != 128 || sample.Tensor.C != 3 {
			t.Fatalf("sample %d tensor %dx%dx%d", i, sample.Tensor.C, sample.Tensor.H, sample.Tensor.W)
		}
		var sum float64
		for _, w := range sample.SoftLabel {
			if w <= 0 {
				t.Fatalf("sample %d has non-positive label weight", i)
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("sample %d soft label sums to %v", i, sum)
		}
		for _, k := range sample.Keys {
			if k == "" {
				t.Fatalf("sample %d missing source key", i)
			}
		}
	}
}

func TestPrepareRICAPDeterministic(t *testing.T) {
	s := imageStore(t, 8)
	cfg := DefaultRICAPConfig()
	cfg.OutW, cfg.OutH = 64, 64
	a, err := PrepareRICAPBatch(s, s.Keys(), 2, cfg, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PrepareRICAPBatch(s, s.Keys(), 2, cfg, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i].Tensor.Data {
			if a[i].Tensor.Data[j] != b[i].Tensor.Data[j] {
				t.Fatal("RICAP batch not deterministic")
			}
		}
	}
	c, err := PrepareRICAPBatch(s, s.Keys(), 2, cfg, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j := range a[0].Tensor.Data {
		if a[0].Tensor.Data[j] != c[0].Tensor.Data[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different epochs produced identical RICAP samples")
	}
}

func TestPrepareRICAPValidation(t *testing.T) {
	s := imageStore(t, 8)
	cfg := DefaultRICAPConfig()
	if _, err := PrepareRICAPBatch(s, s.Keys()[:3], 1, cfg, 1, 0); err == nil {
		t.Error("three keys accepted")
	}
	if _, err := PrepareRICAPBatch(s, s.Keys(), 0, cfg, 1, 0); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := PrepareRICAPBatch(s, []string{"a", "b", "c", "d"}, 1, cfg, 1, 0); err == nil {
		t.Error("missing keys accepted")
	}
}
