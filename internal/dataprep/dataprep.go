// Package dataprep is the data-preparation library of the reproduction:
// the functional equivalent of the paper's Caffe+DALI front-end (baseline)
// and of the FPGA preparation engines (offload path).
//
// It composes the real kernels from internal/imgproc and internal/dsp
// into deterministic per-sample pipelines:
//
//	image: JPEG decode → random crop → random mirror → Gaussian noise → float32 CHW
//	audio: PCM decode → noise augment → log-Mel spectrogram → SpecAugment masks → normalize
//
// Determinism matters: the same (dataset seed, sample key, epoch) triple
// always yields the same augmented sample, which is what lets the tests
// assert that the CPU path and the FPGA emulator produce bit-identical
// outputs — the paper's offload-correctness property.
package dataprep

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"trainbox/internal/dsp"
	"trainbox/internal/imgproc"
	"trainbox/internal/memframe"
	"trainbox/internal/metrics"
	"trainbox/internal/pipeline"
	"trainbox/internal/storage"
)

// ImageConfig parameterizes the image pipeline.
type ImageConfig struct {
	CropW, CropH int
	// MirrorProb is the probability of a horizontal flip.
	MirrorProb float64
	// NoiseStd is the Gaussian pixel-noise standard deviation (8-bit
	// counts); 0 disables.
	NoiseStd float64
	// Mean and Std are per-channel normalization constants (nil = none).
	Mean, Std []float64
	// Augment disables random crop/mirror/noise when false (center crop
	// only) — the "without augmentation" arm of Figure 5.
	Augment bool
}

// DefaultImageConfig returns the Imagenet-style pipeline: 224×224 random
// crop, 50% mirror, light noise, Imagenet normalization.
func DefaultImageConfig() ImageConfig {
	return ImageConfig{
		CropW: imgproc.ModelSize, CropH: imgproc.ModelSize,
		MirrorProb: 0.5, NoiseStd: 4,
		Mean: imgproc.ImagenetMean, Std: imgproc.ImagenetStd,
		Augment: true,
	}
}

// AudioConfig parameterizes the audio pipeline.
type AudioConfig struct {
	Mel dsp.MelConfig
	// NoiseStd is waveform noise (augmentation); 0 disables.
	NoiseStd float64
	// TimeMaskWidth and FreqMaskWidth are SpecAugment maximum widths;
	// 0 disables that mask.
	TimeMaskWidth int
	FreqMaskWidth int
	// Normalize standardizes the final spectrogram.
	Normalize bool
	// Augment disables noise and masking when false.
	Augment bool
}

// DefaultAudioConfig returns the speech front-end with SpecAugment.
func DefaultAudioConfig() AudioConfig {
	return AudioConfig{
		Mel:      dsp.DefaultMelConfig(),
		NoiseStd: 0.005, TimeMaskWidth: 40, FreqMaskWidth: 15,
		Normalize: true, Augment: true,
	}
}

// SampleSeed derives the deterministic RNG seed for one prepared sample.
// Identical inputs always produce the identical seed on any platform.
func SampleSeed(datasetSeed int64, key string, epoch int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", datasetSeed, key, epoch)
	return int64(h.Sum64())
}

// PrepareImage runs the full image pipeline on stored JPEG bytes. Shim
// over PrepareImageScratch with a throwaway working set, so the caller
// owns the result outright.
func PrepareImage(jpegData []byte, cfg ImageConfig, seed int64) (*imgproc.Tensor, error) {
	return PrepareImageScratch(jpegData, cfg, seed, nil)
}

// PrepareAudio runs the full audio pipeline on stored PCM16 bytes. Shim
// over PrepareAudioScratch with a throwaway working set, so the caller
// owns the result outright.
func PrepareAudio(pcmData []byte, cfg AudioConfig, seed int64) (*dsp.Spectrogram, error) {
	return PrepareAudioScratch(pcmData, cfg, seed, nil)
}

// Prepared is one pipeline output: exactly one of Image, Audio, or
// Video is set.
type Prepared struct {
	Key   string
	Label int
	Image *imgproc.Tensor
	Audio *dsp.Spectrogram
	// Video holds one tensor per sampled frame.
	Video []*imgproc.Tensor
	Err   error
}

// Preparer turns a stored object into a prepared sample. Both the CPU
// executor and the FPGA emulator implement it; the contract tested in
// internal/fpga is that they are bit-identical for equal seeds.
type Preparer interface {
	Prepare(obj storage.Object, seed int64) Prepared
}

// ImagePreparer is the CPU image Preparer.
type ImagePreparer struct {
	Config ImageConfig
}

// Prepare implements Preparer.
func (p ImagePreparer) Prepare(obj storage.Object, seed int64) Prepared {
	t, err := PrepareImage(obj.Data, p.Config, seed)
	return Prepared{Key: obj.Key, Label: obj.Label, Image: t, Err: err}
}

// AudioPreparer is the CPU audio Preparer.
type AudioPreparer struct {
	Config AudioConfig
}

// Prepare implements Preparer.
func (p AudioPreparer) Prepare(obj storage.Object, seed int64) Prepared {
	s, err := PrepareAudio(obj.Data, p.Config, seed)
	return Prepared{Key: obj.Key, Label: obj.Label, Audio: s, Err: err}
}

// Executor prepares batches on the staged-pipeline runtime — the
// software-pipelined, batched baseline of Section III-B ("batching,
// software pipelining, and data partitioning"). Each batch runs a
// fetch→prepare pipeline: a serial storage-read stage feeding a
// prepare stage with the configured worker parallelism through a
// bounded queue, with per-stage counters accumulated across batches.
type Executor struct {
	prep        Preparer
	workers     int
	datasetSeed int64
	stats       pipeline.StatsSet

	// The zero-allocation sample path: when prep implements
	// ScratchPreparer, every worker draws a pooled Scratch whose output
	// buffers come from out; consumers return finished samples through
	// Recycle to close the loop.
	out       *memframe.Set
	scratches *pipeline.Pool[*Scratch]

	reg        *metrics.Registry
	mSamples   *metrics.Counter   // dataprep.executor.samples_prepared
	mPerSample *metrics.Histogram // dataprep.executor.ns_per_sample
	mRate      *metrics.Meter     // dataprep.samples (rate)
	mBatches   *metrics.Counter   // dataprep.executor.batches_prepared
}

// NewExecutor creates an executor; workers ≤ 0 selects GOMAXPROCS.
func NewExecutor(prep Preparer, workers int, datasetSeed int64) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Executor{prep: prep, workers: workers, datasetSeed: datasetSeed}
	e.out = memframe.NewSet()
	e.scratches = pipeline.NewPool(func() *Scratch { return NewScratchWithOutput(e.out) })
	return e
}

// prepareSample runs one sample through the preparer, threading a
// pooled Scratch when the preparer supports it.
func (e *Executor) prepareSample(obj storage.Object, seed int64) Prepared {
	if sp, ok := e.prep.(ScratchPreparer); ok {
		s := e.scratches.Get()
		p := sp.PrepareScratch(obj, seed, s)
		e.scratches.Put(s)
		return p
	}
	return e.prep.Prepare(obj, seed)
}

// Recycle returns finished samples' output buffers (tensor and
// spectrogram data) to the executor's output pools for reuse by later
// prepares. Callers must drop every reference to the recycled samples
// first: touching a recycled buffer races with the next prepare.
// Recycling samples that did not come from this executor is safe but
// pointless.
func (e *Executor) Recycle(ps ...Prepared) {
	for i := range ps {
		p := &ps[i]
		if p.Image != nil && p.Image.Data != nil {
			e.out.F32.Put(p.Image.Data)
			p.Image = nil
		}
		if p.Audio != nil && p.Audio.Data != nil {
			e.out.F64.Put(p.Audio.Data)
			p.Audio = nil
		}
		for _, t := range p.Video {
			if t != nil && t.Data != nil {
				e.out.F32.Put(t.Data)
			}
		}
		p.Video = nil
	}
}

// Preparer returns the executor's sample preparer.
func (e *Executor) Preparer() Preparer { return e.prep }

// WithPreparer swaps the executor's preparer in place — the seam that
// lets a cache tier (internal/dscache) interpose on an
// already-constructed executor without rebuilding its pools. The
// replacement must be bit-identical to the original for equal seeds
// (the dscache preparers are, by construction). Swap before the
// executor serves traffic: swapping concurrently with an in-flight
// batch races. Returns e for chaining.
func (e *Executor) WithPreparer(p Preparer) *Executor {
	if p != nil {
		e.prep = p
	}
	return e
}

// DatasetSeed returns the executor's dataset seed.
func (e *Executor) DatasetSeed() int64 { return e.datasetSeed }

// ScratchStats reports the per-worker Scratch pool's reuse counters; in
// steady state News ≪ Gets.
func (e *Executor) ScratchStats() pipeline.PoolStats { return e.scratches.Stats() }

// OutputStats reports the output buffer pools' aggregate reuse
// counters; News ≈ Gets means nobody is calling Recycle.
func (e *Executor) OutputStats() memframe.Stats { return e.out.Stats() }

// WithMetrics attaches a registry: every subsequent batch reports
// samples prepared, per-sample latency quantiles, and delivered-sample
// rate under "dataprep.*", and the fetch→prepare pipeline reports
// per-stage telemetry under "pipeline.dataprep.*". Attach before use;
// returns e for chaining.
func (e *Executor) WithMetrics(reg *metrics.Registry) *Executor {
	e.reg = reg
	e.mSamples = reg.Counter("dataprep.executor.samples_prepared")
	e.mPerSample = reg.Histogram("dataprep.executor.ns_per_sample")
	e.mRate = reg.Meter("dataprep.executor.samples")
	e.mBatches = reg.Counter("dataprep.executor.batches_prepared")
	return e
}

// Stats returns the executor's cumulative per-stage pipeline counters
// (items, busy time, queue occupancy) across every batch it prepared.
func (e *Executor) Stats() []pipeline.StageStats {
	return e.stats.Snapshot()
}

// PrepareBatch prepares the keyed objects from the store for the given
// epoch, preserving key order in the result. The first storage or
// pipeline error is returned (with partial results discarded).
func (e *Executor) PrepareBatch(store *storage.Store, keys []string, epoch int) ([]Prepared, error) {
	return e.PrepareBatchContext(context.Background(), store, keys, epoch)
}

// PrepareOne prepares a single keyed sample on the host path with an
// explicit dataset seed. It is the degraded-mode entry point: when a
// prep pool has ejected every device, fpga.Cluster falls back here
// sample by sample, and because the augmentation seed depends only on
// (dataset seed, key, epoch) the result is bit-identical to what any
// pooled device would have produced.
func (e *Executor) PrepareOne(ctx context.Context, store *storage.Store, key string, datasetSeed int64, epoch int) (Prepared, error) {
	obj, err := store.GetContext(ctx, key)
	if err != nil {
		return Prepared{}, fmt.Errorf("dataprep: sample %q: %w", key, err)
	}
	p := e.prepareSample(obj, SampleSeed(datasetSeed, key, epoch))
	if p.Err != nil {
		return Prepared{}, fmt.Errorf("dataprep: sample %q: %w", p.Key, p.Err)
	}
	e.mSamples.Inc()
	e.mRate.Mark(1)
	return p, nil
}

// PrepareBatchContext is PrepareBatch with cancellation: the first
// error — or ctx being cancelled — stops the fetch and prepare stages
// and drains the pipeline before returning.
func (e *Executor) PrepareBatchContext(ctx context.Context, store *storage.Store, keys []string, epoch int) ([]Prepared, error) {
	fetch := pipeline.NewStage("fetch", 1, e.workers,
		func(ctx context.Context, i int) (storage.Object, error) {
			obj, err := store.GetContext(ctx, keys[i])
			if err != nil {
				return storage.Object{}, fmt.Errorf("dataprep: sample %q: %w", keys[i], err)
			}
			return obj, nil
		})
	prep := pipeline.NewStage("prepare", e.workers, e.workers,
		func(_ context.Context, obj storage.Object) (Prepared, error) {
			p := e.prepareSample(obj, SampleSeed(e.datasetSeed, obj.Key, epoch))
			if p.Err != nil {
				return Prepared{}, fmt.Errorf("dataprep: sample %q: %w", p.Key, p.Err)
			}
			return p, nil
		})
	pl, err := pipeline.New("dataprep", fetch, prep)
	if err != nil {
		return nil, err
	}
	// A cancelled batch strands prepared samples in the pipeline; their
	// pooled output buffers must flow back or the working set leaks one
	// batch per cancellation.
	pl.WithDiscard(func(v any) {
		if p, ok := v.(Prepared); ok {
			e.Recycle(p)
		}
	})
	start := time.Now()
	run := pl.WithMetrics(e.reg).Run(ctx, pipeline.IndexSource(len(keys)))
	out, err := pipeline.Drain[Prepared](run)
	e.stats.Add(run.Stats())
	if err != nil {
		return nil, err
	}
	if n := len(out); n > 0 {
		e.mSamples.Add(int64(n))
		e.mRate.Mark(int64(n))
		e.mBatches.Inc()
		e.mPerSample.Observe(float64(time.Since(start).Nanoseconds()) / float64(n))
	}
	return out, nil
}
