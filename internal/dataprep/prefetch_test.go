package dataprep

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestPrefetcherDeliversEpochsInOrder(t *testing.T) {
	s := imageStore(t, 4)
	exec := NewExecutor(ImagePreparer{Config: DefaultImageConfig()}, 2, 1)
	pf, err := NewPrefetcher(exec, s, s.Keys(), 3, WithDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	for epoch := 0; epoch < 3; epoch++ {
		b, err := pf.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b.Epoch != epoch {
			t.Fatalf("epoch = %d, want %d", b.Epoch, epoch)
		}
		if len(b.Samples) != 4 {
			t.Fatalf("batch size = %d", len(b.Samples))
		}
	}
	if _, err := pf.Next(); err != ErrExhausted {
		t.Errorf("after last epoch: err = %v, want ErrExhausted", err)
	}
}

func TestPrefetcherMatchesDirectPreparation(t *testing.T) {
	s := imageStore(t, 4)
	exec := NewExecutor(ImagePreparer{Config: DefaultImageConfig()}, 2, 1)
	direct, err := exec.PrepareBatch(s, s.Keys(), 0)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := NewPrefetcher(exec, s, s.Keys(), 1, WithDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	b, err := pf.Next()
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		for j := range direct[i].Image.Data {
			if direct[i].Image.Data[j] != b.Samples[i].Image.Data[j] {
				t.Fatal("prefetched batch differs from direct preparation")
			}
		}
	}
}

func TestPrefetcherCloseEarly(t *testing.T) {
	s := imageStore(t, 4)
	exec := NewExecutor(ImagePreparer{Config: DefaultImageConfig()}, 2, 1)
	pf, err := NewPrefetcher(exec, s, s.Keys(), 100, WithDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf.Next(); err != nil {
		t.Fatal(err)
	}
	pf.Close()
	pf.Close() // idempotent
}

func TestPrefetcherPropagatesErrors(t *testing.T) {
	s := imageStore(t, 2)
	exec := NewExecutor(ImagePreparer{Config: DefaultImageConfig()}, 2, 1)
	pf, err := NewPrefetcher(exec, s, []string{"img-00000", "missing"}, 2, WithDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if _, err := pf.Next(); err == nil || err == ErrExhausted {
		t.Errorf("missing key: err = %v, want pipeline error", err)
	}
}

func TestPrefetcherValidation(t *testing.T) {
	s := imageStore(t, 2)
	exec := NewExecutor(ImagePreparer{Config: DefaultImageConfig()}, 2, 1)
	cases := []struct {
		name string
		f    func() (*Prefetcher, error)
	}{
		{"nil executor", func() (*Prefetcher, error) { return NewPrefetcher(nil, s, s.Keys(), 1, WithDepth(1)) }},
		{"nil store", func() (*Prefetcher, error) { return NewPrefetcher(exec, nil, s.Keys(), 1, WithDepth(1)) }},
		{"no keys", func() (*Prefetcher, error) { return NewPrefetcher(exec, s, nil, 1, WithDepth(1)) }},
		{"zero epochs", func() (*Prefetcher, error) { return NewPrefetcher(exec, s, s.Keys(), 0, WithDepth(1)) }},
		{"zero depth", func() (*Prefetcher, error) { return NewPrefetcher(exec, s, s.Keys(), 1, WithDepth(0)) }},
	}
	for _, c := range cases {
		if _, err := c.f(); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

// TestPrefetcherConcurrentDoubleClose is the regression test for the
// unsynchronized `closed bool` of the pre-pipeline Prefetcher: many
// goroutines racing Close (and a concurrent Next) must neither panic
// nor deadlock. Run with -race.
func TestPrefetcherConcurrentDoubleClose(t *testing.T) {
	t.Parallel()
	s := imageStore(t, 2)
	exec := NewExecutor(ImagePreparer{Config: DefaultImageConfig()}, 2, 1)
	pf, err := NewPrefetcher(exec, s, s.Keys(), 50, WithDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf.Next(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pf.Close()
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, err := pf.Next(); err != nil {
				return
			}
		}
	}()
	wg.Wait()
	pf.Close() // and once more after everyone is done
	if _, err := pf.Next(); err != ErrClosed {
		t.Errorf("Next after Close: err = %v, want ErrClosed", err)
	}
}

// TestPrefetcherNextAfterCloseReturnsErrClosed: Close mid-schedule must
// make Next return the ErrClosed sentinel — distinct from ErrExhausted
// (schedule finished) and from pipeline errors — so consumers can tell
// an intentional shutdown from a completed or failed run.
func TestPrefetcherNextAfterCloseReturnsErrClosed(t *testing.T) {
	s := imageStore(t, 2)
	exec := NewExecutor(ImagePreparer{Config: DefaultImageConfig()}, 2, 1)
	pf, err := NewPrefetcher(exec, s, s.Keys(), 50, WithDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf.Next(); err != nil {
		t.Fatal(err)
	}
	pf.Close()
	for i := 0; i < 3; i++ {
		if _, err := pf.Next(); err != ErrClosed {
			t.Fatalf("Next %d after Close: err = %v, want ErrClosed", i, err)
		}
	}
	if ErrClosed == ErrExhausted {
		t.Fatal("sentinels must be distinct")
	}
	// A prefetcher that exhausts naturally still reports ErrExhausted —
	// and only flips to ErrClosed once Close is called.
	pf2, err := NewPrefetcher(exec, s, s.Keys(), 1, WithDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf2.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := pf2.Next(); err != ErrExhausted {
		t.Errorf("exhausted prefetcher: err = %v, want ErrExhausted", err)
	}
	pf2.Close()
	if _, err := pf2.Next(); err != ErrClosed {
		t.Errorf("closed-after-exhaustion: err = %v, want ErrClosed", err)
	}
}

// TestPrefetcherErrorDoesNotLeakGoroutines: a mid-schedule storage error
// must cancel the whole pipeline and release every goroutine it spawned.
func TestPrefetcherErrorDoesNotLeakGoroutines(t *testing.T) {
	s := imageStore(t, 4)
	exec := NewExecutor(ImagePreparer{Config: DefaultImageConfig()}, 2, 1)
	base := runtime.NumGoroutine()
	keys := append(s.Keys(), "missing")
	pf, err := NewPrefetcher(exec, s, keys, 100, WithDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf.Next(); err == nil || err == ErrExhausted {
		t.Fatalf("missing key: err = %v, want pipeline error", err)
	}
	pf.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("goroutines leaked after failed run: %d running, started with %d", n, base)
	}
}

// TestPrefetcherStats: the prepare stage's counters must reflect the
// delivered epochs.
func TestPrefetcherStats(t *testing.T) {
	s := imageStore(t, 2)
	exec := NewExecutor(ImagePreparer{Config: DefaultImageConfig()}, 2, 1)
	pf, err := NewPrefetcher(exec, s, s.Keys(), 3, WithDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	for {
		if _, err := pf.Next(); err != nil {
			break
		}
	}
	stats := pf.Stats()
	if len(stats) != 1 || stats[0].Name != "prepare" {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].ItemsOut != 3 {
		t.Errorf("prepare stage delivered %d epochs, want 3", stats[0].ItemsOut)
	}
	if es := exec.Stats(); len(es) != 2 || es[0].ItemsIn == 0 {
		t.Errorf("executor stats not accumulated: %+v", es)
	}
}

// TestPrefetcherOverlapsPreparation verifies the pipeline actually runs
// ahead: with depth 2, the second batch should already be buffered by
// the time the consumer asks for it (observable as the channel being
// non-empty after a pause — we assert indirectly by checking Next never
// errors and ordering holds under a slow consumer).
func TestPrefetcherSlowConsumer(t *testing.T) {
	s := imageStore(t, 2)
	exec := NewExecutor(ImagePreparer{Config: DefaultImageConfig()}, 2, 1)
	pf, err := NewPrefetcher(exec, s, s.Keys(), 5, WithDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	for epoch := 0; epoch < 5; epoch++ {
		b, err := pf.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b.Epoch != epoch {
			t.Fatalf("slow consumer broke ordering: %d != %d", b.Epoch, epoch)
		}
	}
}

// TestDeprecatedPrefetcherShim keeps the pre-options constructor alive:
// NewPrefetcherDepth must behave exactly like NewPrefetcher+WithDepth,
// including rejecting a non-positive depth.
func TestDeprecatedPrefetcherShim(t *testing.T) {
	s := imageStore(t, 3)
	exec := NewExecutor(ImagePreparer{Config: DefaultImageConfig()}, 2, 1)
	pf, err := NewPrefetcherDepth(exec, s, s.Keys(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	for epoch := 0; epoch < 2; epoch++ {
		b, err := pf.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b.Epoch != epoch || len(b.Samples) != s.Len() {
			t.Fatalf("shimmed prefetcher misdelivered epoch %d: %+v", epoch, b)
		}
	}
	if _, err := pf.Next(); err != ErrExhausted {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	if _, err := NewPrefetcherDepth(exec, s, s.Keys(), 1, 0); err == nil {
		t.Fatal("shim accepted depth 0")
	}
}
