package nvme

import (
	"fmt"
	"sort"

	"trainbox/internal/storage"
)

// Extent is a named object's block placement in the namespace.
type Extent struct {
	Key string
	LBA uint64
	// Bytes is the object's exact length (the final block may be
	// partially used).
	Bytes int
	// Label carries the dataset label through the block layer.
	Label int
}

// Blocks returns the extent's block count.
func (e Extent) Blocks() uint32 {
	return uint32((e.Bytes + BlockSize - 1) / BlockSize)
}

// Namespace lays dataset objects out as contiguous block extents on a
// Controller and keeps the key→extent directory the P2P handler uses.
type Namespace struct {
	ctrl    *Controller
	extents map[string]Extent
	nextLBA uint64
}

// LoadStore provisions a controller sized for every object in the shard
// store and writes them out contiguously in key order — the train
// initializer's data-distribution step made concrete at the block level.
func LoadStore(store *storage.Store) (*Namespace, error) {
	keys := store.Keys()
	if len(keys) == 0 {
		return nil, fmt.Errorf("nvme: empty store")
	}
	var totalBlocks uint64
	for _, k := range keys {
		obj, err := store.Get(k)
		if err != nil {
			return nil, err
		}
		totalBlocks += uint64((len(obj.Data) + BlockSize - 1) / BlockSize)
	}
	ctrl, err := NewController(int(totalBlocks))
	if err != nil {
		return nil, err
	}
	ns := &Namespace{ctrl: ctrl, extents: map[string]Extent{}}
	sort.Strings(keys)
	for _, k := range keys {
		obj, err := store.Get(k)
		if err != nil {
			return nil, err
		}
		ext := Extent{Key: k, LBA: ns.nextLBA, Bytes: len(obj.Data), Label: obj.Label}
		if err := ctrl.WriteBlocks(ext.LBA, obj.Data); err != nil {
			return nil, err
		}
		ns.extents[k] = ext
		ns.nextLBA += uint64(ext.Blocks())
	}
	return ns, nil
}

// Controller returns the device.
func (ns *Namespace) Controller() *Controller { return ns.ctrl }

// Extent resolves a key to its placement.
func (ns *Namespace) Extent(key string) (Extent, error) {
	e, ok := ns.extents[key]
	if !ok {
		return Extent{}, fmt.Errorf("nvme: no extent for %q", key)
	}
	return e, nil
}

// Len returns the number of stored objects.
func (ns *Namespace) Len() int { return len(ns.extents) }

// Client is the FPGA-resident NVMe command generator of the P2P handler:
// it reads objects from the namespace purely through the queue-pair
// interface, with no host software on the path.
type Client struct {
	ns     *Namespace
	qp     *QueuePair
	nextID uint16
}

// NewClient creates a client with its own queue pair of the given depth.
func NewClient(ns *Namespace, depth int) (*Client, error) {
	qp, err := NewQueuePair(depth)
	if err != nil {
		return nil, err
	}
	return &Client{ns: ns, qp: qp}, nil
}

// ReadObject fetches a stored object by key: resolve the extent, issue a
// read command, ring the doorbell, poll the completion, and trim to the
// object's byte length.
func (c *Client) ReadObject(key string) (storage.Object, error) {
	ext, err := c.ns.Extent(key)
	if err != nil {
		return storage.Object{}, err
	}
	c.nextID++
	cmd := Command{ID: c.nextID, Opcode: OpRead, LBA: ext.LBA, NumBlocks: ext.Blocks()}
	if !c.qp.Submit(cmd) {
		return storage.Object{}, fmt.Errorf("nvme: submission queue full")
	}
	c.ns.ctrl.Doorbell(c.qp)
	comp, ok := c.qp.Poll()
	if !ok {
		return storage.Object{}, fmt.Errorf("nvme: no completion posted for %q", key)
	}
	if comp.CommandID != cmd.ID {
		return storage.Object{}, fmt.Errorf("nvme: completion for command %d, want %d", comp.CommandID, cmd.ID)
	}
	if comp.Status != StatusSuccess {
		return storage.Object{}, fmt.Errorf("nvme: read %q failed: %v", key, comp.Status)
	}
	return storage.Object{Key: key, Label: ext.Label, Data: comp.Data[:ext.Bytes]}, nil
}
