package nvme

import (
	"bytes"
	"testing"
	"testing/quick"

	"trainbox/internal/dataprep"
	"trainbox/internal/storage"
)

func TestQueuePairDepthAndWraparound(t *testing.T) {
	qp, err := NewQueuePair(4)
	if err != nil {
		t.Fatal(err)
	}
	// Fill, drain, and refill across the wrap boundary several times.
	for round := 0; round < 3; round++ {
		for i := 0; i < 4; i++ {
			if !qp.Submit(Command{ID: uint16(round*4 + i)}) {
				t.Fatalf("round %d: submit %d rejected", round, i)
			}
		}
		if qp.Submit(Command{ID: 99}) {
			t.Fatal("full queue accepted a command")
		}
		if qp.SubmissionDepth() != 4 {
			t.Fatalf("depth = %d", qp.SubmissionDepth())
		}
		for i := 0; i < 4; i++ {
			cmd, ok := qp.sq.pop()
			if !ok || cmd.ID != uint16(round*4+i) {
				t.Fatalf("round %d: popped %v/%v, want ID %d", round, cmd.ID, ok, round*4+i)
			}
		}
	}
	if _, err := NewQueuePair(1); err == nil {
		t.Error("depth-1 queue accepted")
	}
}

func TestControllerReadRoundTrip(t *testing.T) {
	ctrl, err := NewController(8)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 2*BlockSize)
	if err := ctrl.WriteBlocks(3, payload); err != nil {
		t.Fatal(err)
	}
	qp, _ := NewQueuePair(4)
	qp.Submit(Command{ID: 7, Opcode: OpRead, LBA: 3, NumBlocks: 2})
	ctrl.Doorbell(qp)
	comp, ok := qp.Poll()
	if !ok {
		t.Fatal("no completion")
	}
	if comp.CommandID != 7 || comp.Status != StatusSuccess {
		t.Fatalf("completion = %+v", comp)
	}
	if !bytes.Equal(comp.Data, payload) {
		t.Error("read data mismatch")
	}
}

func TestControllerErrorStatuses(t *testing.T) {
	ctrl, _ := NewController(4)
	qp, _ := NewQueuePair(8)
	qp.Submit(Command{ID: 1, Opcode: Opcode(0x99), LBA: 0, NumBlocks: 1})
	qp.Submit(Command{ID: 2, Opcode: OpRead, LBA: 3, NumBlocks: 2}) // past end
	qp.Submit(Command{ID: 3, Opcode: OpRead, LBA: 0, NumBlocks: 0}) // zero-length
	ctrl.Doorbell(qp)
	wants := []Status{StatusInvalidOp, StatusLBAOutOfRange, StatusLBAOutOfRange}
	for i, want := range wants {
		comp, ok := qp.Poll()
		if !ok {
			t.Fatalf("missing completion %d", i)
		}
		if comp.Status != want {
			t.Errorf("completion %d status = %v, want %v", i, comp.Status, want)
		}
	}
	if _, err := NewController(0); err == nil {
		t.Error("zero-block controller accepted")
	}
	if err := ctrl.WriteBlocks(3, make([]byte, 2*BlockSize)); err == nil {
		t.Error("out-of-range write accepted")
	}
}

func TestDoorbellStopsWhenCompletionQueueFull(t *testing.T) {
	ctrl, _ := NewController(16)
	qp, _ := NewQueuePair(2)
	qp.Submit(Command{ID: 1, Opcode: OpRead, LBA: 0, NumBlocks: 1})
	qp.Submit(Command{ID: 2, Opcode: OpRead, LBA: 1, NumBlocks: 1})
	ctrl.Doorbell(qp)
	if qp.CompletionDepth() != 2 {
		t.Fatalf("completions = %d", qp.CompletionDepth())
	}
	// CQ full; a third command must stay pending until a poll frees room.
	qp.Submit(Command{ID: 3, Opcode: OpRead, LBA: 2, NumBlocks: 1})
	ctrl.Doorbell(qp)
	if qp.SubmissionDepth() != 1 {
		t.Errorf("pending commands = %d, want 1 (flow control)", qp.SubmissionDepth())
	}
	qp.Poll()
	ctrl.Doorbell(qp)
	if qp.SubmissionDepth() != 0 || qp.CompletionDepth() != 2 {
		t.Errorf("after poll: sq=%d cq=%d", qp.SubmissionDepth(), qp.CompletionDepth())
	}
}

func TestCompletionOrderMatchesSubmission(t *testing.T) {
	ctrl, _ := NewController(32)
	qp, _ := NewQueuePair(16)
	for i := 0; i < 10; i++ {
		qp.Submit(Command{ID: uint16(i), Opcode: OpRead, LBA: uint64(i), NumBlocks: 1})
	}
	ctrl.Doorbell(qp)
	for i := 0; i < 10; i++ {
		comp, ok := qp.Poll()
		if !ok || comp.CommandID != uint16(i) {
			t.Fatalf("completion %d out of order: %+v", i, comp)
		}
	}
}

func buildImageNamespace(t *testing.T, n int) (*storage.Store, *Namespace) {
	t.Helper()
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store, n, 4, 3); err != nil {
		t.Fatal(err)
	}
	ns, err := LoadStore(store)
	if err != nil {
		t.Fatal(err)
	}
	return store, ns
}

func TestNamespaceLoadAndRead(t *testing.T) {
	store, ns := buildImageNamespace(t, 6)
	if ns.Len() != 6 {
		t.Fatalf("namespace objects = %d", ns.Len())
	}
	client, err := NewClient(ns, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range store.Keys() {
		want, _ := store.Get(key)
		got, err := client.ReadObject(key)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("%s: block-layer read differs from store", key)
		}
		if got.Label != want.Label {
			t.Fatalf("%s: label %d, want %d", key, got.Label, want.Label)
		}
	}
	if _, err := client.ReadObject("missing"); err == nil {
		t.Error("missing key accepted")
	}
}

func TestNamespaceExtentsNonOverlappingProperty(t *testing.T) {
	store, ns := buildImageNamespace(t, 8)
	type span struct{ start, end uint64 }
	var spans []span
	for _, key := range store.Keys() {
		ext, err := ns.Extent(key)
		if err != nil {
			t.Fatal(err)
		}
		spans = append(spans, span{ext.LBA, ext.LBA + uint64(ext.Blocks())})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.start < b.end && b.start < a.end {
				t.Fatalf("extents overlap: %+v and %+v", a, b)
			}
		}
	}
	// Property: every extent fits in the namespace.
	f := func(idx uint8) bool {
		keys := store.Keys()
		ext, err := ns.Extent(keys[int(idx)%len(keys)])
		if err != nil {
			return false
		}
		return ext.LBA+uint64(ext.Blocks()) <= ns.Controller().NumBlocks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLoadStoreEmpty(t *testing.T) {
	store := storage.NewStore(storage.DefaultSSDSpec())
	if _, err := LoadStore(store); err == nil {
		t.Error("empty store accepted")
	}
}

func TestStatusStrings(t *testing.T) {
	for _, s := range []Status{StatusSuccess, StatusInvalidOp, StatusLBAOutOfRange, Status(0x42)} {
		if s.String() == "" {
			t.Errorf("status %d has empty string", s)
		}
	}
}
