// Package nvme implements a minimal NVMe block device with submission
// and completion queue pairs — the substrate behind TrainBox's P2P
// handler (Section V-C): "we implement NVMe command generators, and
// place NVMe command and completion queues in the FPGA memory. In this
// way, FPGAs can issue NVMe commands and fetch the data from SSDs."
//
// The model covers what the datapath needs: a block-addressed namespace
// backed by memory, fixed-depth ring queues with head/tail doorbells,
// read commands, and in-order completion posting. A Namespace also maps
// named dataset objects to block extents so the FPGA-side client
// (internal/fpga's P2P handler) can fetch stored items without any
// host-software involvement — the property the paper's P2P optimization
// delivers.
package nvme

import (
	"fmt"
)

// BlockSize is the logical block size in bytes (standard 4 KiB).
const BlockSize = 4096

// Opcode identifies the NVMe command type.
type Opcode uint8

// Supported opcodes.
const (
	OpRead Opcode = 0x02
)

// Command is one submission-queue entry.
type Command struct {
	ID     uint16 // command identifier, echoed in the completion
	Opcode Opcode
	// LBA is the starting logical block address.
	LBA uint64
	// NumBlocks is the 1-based block count (NVMe encodes 0-based; the
	// model keeps the natural count).
	NumBlocks uint32
}

// Status is a completion status code.
type Status uint16

// Status codes.
const (
	StatusSuccess       Status = 0x0
	StatusInvalidOp     Status = 0x1
	StatusLBAOutOfRange Status = 0x80
)

func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "success"
	case StatusInvalidOp:
		return "invalid-opcode"
	case StatusLBAOutOfRange:
		return "lba-out-of-range"
	}
	return fmt.Sprintf("status(%#x)", uint16(s))
}

// Completion is one completion-queue entry.
type Completion struct {
	CommandID uint16
	Status    Status
	// Data holds the read payload on success (the model's stand-in for
	// the DMA into the FPGA's on-board DRAM).
	Data []byte
}

// queue is a fixed-depth ring.
type queue[T any] struct {
	entries []T
	head    int // consumer index
	tail    int // producer index
	count   int
}

func newQueue[T any](depth int) *queue[T] {
	return &queue[T]{entries: make([]T, depth)}
}

func (q *queue[T]) push(v T) bool {
	if q.count == len(q.entries) {
		return false
	}
	q.entries[q.tail] = v
	q.tail = (q.tail + 1) % len(q.entries)
	q.count++
	return true
}

func (q *queue[T]) pop() (T, bool) {
	var zero T
	if q.count == 0 {
		return zero, false
	}
	v := q.entries[q.head]
	q.entries[q.head] = zero
	q.head = (q.head + 1) % len(q.entries)
	q.count--
	return v, true
}

// QueuePair is a submission/completion queue pair of equal depth.
type QueuePair struct {
	sq *queue[Command]
	cq *queue[Completion]
}

// NewQueuePair allocates a queue pair; depth must be ≥ 2 (NVMe's
// minimum).
func NewQueuePair(depth int) (*QueuePair, error) {
	if depth < 2 {
		return nil, fmt.Errorf("nvme: queue depth %d below the NVMe minimum of 2", depth)
	}
	return &QueuePair{sq: newQueue[Command](depth), cq: newQueue[Completion](depth)}, nil
}

// Submit enqueues a command; it reports false when the submission queue
// is full (the caller must ring later).
func (qp *QueuePair) Submit(cmd Command) bool { return qp.sq.push(cmd) }

// Poll dequeues one completion if available.
func (qp *QueuePair) Poll() (Completion, bool) { return qp.cq.pop() }

// SubmissionDepth reports queued, unprocessed commands.
func (qp *QueuePair) SubmissionDepth() int { return qp.sq.count }

// CompletionDepth reports posted, unconsumed completions.
func (qp *QueuePair) CompletionDepth() int { return qp.cq.count }

// Controller is the device side: it owns the backing blocks and
// processes queue pairs on Doorbell rings.
type Controller struct {
	blocks []byte // namespace backing store
}

// NewController creates a controller with capacity for numBlocks logical
// blocks.
func NewController(numBlocks int) (*Controller, error) {
	if numBlocks <= 0 {
		return nil, fmt.Errorf("nvme: namespace needs at least one block")
	}
	return &Controller{blocks: make([]byte, numBlocks*BlockSize)}, nil
}

// NumBlocks returns the namespace size in blocks.
func (c *Controller) NumBlocks() uint64 { return uint64(len(c.blocks) / BlockSize) }

// WriteBlocks copies data into the namespace at the given LBA (a
// provisioning-side helper: datasets are written once, then read over
// the queue interface).
func (c *Controller) WriteBlocks(lba uint64, data []byte) error {
	end := lba*BlockSize + uint64(len(data))
	if end > uint64(len(c.blocks)) {
		return fmt.Errorf("nvme: write [%d, %d) beyond namespace of %d blocks", lba, end/BlockSize+1, c.NumBlocks())
	}
	copy(c.blocks[lba*BlockSize:end], data)
	return nil
}

// Doorbell processes every pending submission on the queue pair in
// order, posting one completion each. Completions that do not fit in the
// completion queue leave their commands pending (processed on the next
// ring), mirroring real controller flow control.
func (c *Controller) Doorbell(qp *QueuePair) {
	for qp.sq.count > 0 && qp.cq.count < len(qp.cq.entries) {
		cmd, _ := qp.sq.pop()
		qp.cq.push(c.execute(cmd))
	}
}

func (c *Controller) execute(cmd Command) Completion {
	comp := Completion{CommandID: cmd.ID}
	if cmd.Opcode != OpRead {
		comp.Status = StatusInvalidOp
		return comp
	}
	start := cmd.LBA * BlockSize
	end := start + uint64(cmd.NumBlocks)*BlockSize
	if cmd.NumBlocks == 0 || end > uint64(len(c.blocks)) {
		comp.Status = StatusLBAOutOfRange
		return comp
	}
	comp.Data = append([]byte(nil), c.blocks[start:end]...)
	comp.Status = StatusSuccess
	return comp
}
