package dsp

import (
	"fmt"
	"math"
)

// STFTConfig describes short-time Fourier transform framing. Defaults
// (via DefaultSTFTConfig) follow common speech front-ends: 25 ms windows,
// 10 ms hop, 16 kHz sample rate.
type STFTConfig struct {
	SampleRate int // Hz
	WindowSize int // samples per frame; FFT length is NextPow2(WindowSize)
	HopSize    int // samples between frame starts
}

// DefaultSTFTConfig returns the standard 16 kHz / 25 ms / 10 ms speech
// front-end configuration.
func DefaultSTFTConfig() STFTConfig {
	return STFTConfig{SampleRate: 16000, WindowSize: 400, HopSize: 160}
}

// Validate reports the first configuration error, or nil.
func (c STFTConfig) Validate() error {
	if c.SampleRate <= 0 {
		return fmt.Errorf("dsp: sample rate %d must be positive", c.SampleRate)
	}
	if c.WindowSize <= 0 {
		return fmt.Errorf("dsp: window size %d must be positive", c.WindowSize)
	}
	if c.HopSize <= 0 {
		return fmt.Errorf("dsp: hop size %d must be positive", c.HopSize)
	}
	return nil
}

// NumFrames returns how many full frames fit in n samples.
func (c STFTConfig) NumFrames(n int) int {
	if n < c.WindowSize {
		return 0
	}
	return 1 + (n-c.WindowSize)/c.HopSize
}

// NumBins returns the number of non-redundant spectrum bins per frame
// (fftLen/2 + 1).
func (c STFTConfig) NumBins() int {
	return NextPow2(c.WindowSize)/2 + 1
}

// Spectrogram is a time×frequency matrix stored row-major: Data[t*Bins+f].
type Spectrogram struct {
	Frames int
	Bins   int
	Data   []float64
}

// At returns the value at frame t, bin f.
func (s *Spectrogram) At(t, f int) float64 { return s.Data[t*s.Bins+f] }

// Set stores v at frame t, bin f.
func (s *Spectrogram) Set(t, f int, v float64) { s.Data[t*s.Bins+f] = v }

// NewSpectrogram allocates a zeroed frames×bins spectrogram.
func NewSpectrogram(frames, bins int) *Spectrogram {
	return &Spectrogram{Frames: frames, Bins: bins, Data: make([]float64, frames*bins)}
}

// Reset reshapes s to frames×bins, reusing Data's capacity when it
// fits. Like NewSpectrogram, the cells are zeroed.
func (s *Spectrogram) Reset(frames, bins int) {
	s.Frames, s.Bins = frames, bins
	n := frames * bins
	if cap(s.Data) < n {
		s.Data = make([]float64, n)
		return
	}
	s.Data = s.Data[:n]
	clear(s.Data)
}

// PowerSTFT computes the power spectrogram |STFT|² of signal with Hann
// windowing. It returns an empty (0-frame) spectrogram for signals
// shorter than one window.
func PowerSTFT(signal []float64, cfg STFTConfig) (*Spectrogram, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	frames := cfg.NumFrames(len(signal))
	fftLen := NextPow2(cfg.WindowSize)
	bins := fftLen/2 + 1
	out := NewSpectrogram(frames, bins)
	window := HannWindow(cfg.WindowSize)
	buf := make([]complex128, fftLen)
	for t := 0; t < frames; t++ {
		start := t * cfg.HopSize
		for i := 0; i < cfg.WindowSize; i++ {
			buf[i] = complex(signal[start+i]*window[i], 0)
		}
		for i := cfg.WindowSize; i < fftLen; i++ {
			buf[i] = 0
		}
		if err := FFT(buf); err != nil {
			return nil, err
		}
		for f := 0; f < bins; f++ {
			re, im := real(buf[f]), imag(buf[f])
			out.Set(t, f, re*re+im*im)
		}
	}
	return out, nil
}

// HzToMel converts frequency in Hz to the Mel scale (HTK formula).
func HzToMel(hz float64) float64 { return 2595 * math.Log10(1+hz/700) }

// MelToHz converts a Mel value back to Hz.
func MelToHz(mel float64) float64 { return 700 * (math.Pow(10, mel/2595) - 1) }

// MelFilterbank is a bank of triangular filters mapping FFT bins to Mel
// channels. Filters[m][f] is the weight of bin f in channel m.
type MelFilterbank struct {
	NumMels int
	NumBins int
	Filters [][]float64
}

// NewMelFilterbank constructs numMels triangular filters spanning
// [fMin, fMax] Hz for spectra with numBins bins at the given sample rate.
func NewMelFilterbank(numMels, numBins, sampleRate int, fMin, fMax float64) (*MelFilterbank, error) {
	if numMels <= 0 || numBins <= 1 || sampleRate <= 0 {
		return nil, fmt.Errorf("dsp: invalid filterbank shape mels=%d bins=%d rate=%d", numMels, numBins, sampleRate)
	}
	if fMax <= fMin || fMin < 0 {
		return nil, fmt.Errorf("dsp: invalid filterbank range [%g,%g]", fMin, fMax)
	}
	nyquist := float64(sampleRate) / 2
	if fMax > nyquist {
		fMax = nyquist
	}
	// numMels+2 equally spaced points on the Mel scale define the
	// triangle corners.
	melMin, melMax := HzToMel(fMin), HzToMel(fMax)
	points := make([]float64, numMels+2)
	// fftLen = 2*(numBins-1); bin f covers frequency f*rate/fftLen.
	fftLen := 2 * (numBins - 1)
	for i := range points {
		mel := melMin + (melMax-melMin)*float64(i)/float64(numMels+1)
		hz := MelToHz(mel)
		points[i] = hz * float64(fftLen) / float64(sampleRate)
	}
	fb := &MelFilterbank{NumMels: numMels, NumBins: numBins, Filters: make([][]float64, numMels)}
	for m := 0; m < numMels; m++ {
		left, center, right := points[m], points[m+1], points[m+2]
		row := make([]float64, numBins)
		for f := 0; f < numBins; f++ {
			x := float64(f)
			switch {
			case x <= left || x >= right:
				// outside the triangle
			case x <= center:
				if center > left {
					row[f] = (x - left) / (center - left)
				}
			default:
				if right > center {
					row[f] = (right - x) / (right - center)
				}
			}
		}
		fb.Filters[m] = row
	}
	return fb, nil
}

// Apply maps a power spectrogram through the filterbank, producing a
// frames×numMels Mel spectrogram.
func (fb *MelFilterbank) Apply(s *Spectrogram) (*Spectrogram, error) {
	out := new(Spectrogram)
	if err := fb.ApplyInto(out, s); err != nil {
		return nil, err
	}
	return out, nil
}

// ApplyInto maps a power spectrogram through the filterbank into dst,
// reusing dst's Data capacity. dst must not alias s.
func (fb *MelFilterbank) ApplyInto(dst *Spectrogram, s *Spectrogram) error {
	if s.Bins != fb.NumBins {
		return fmt.Errorf("dsp: spectrogram has %d bins, filterbank expects %d", s.Bins, fb.NumBins)
	}
	out := dst
	out.Reset(s.Frames, fb.NumMels)
	for t := 0; t < s.Frames; t++ {
		row := s.Data[t*s.Bins : (t+1)*s.Bins]
		for m := 0; m < fb.NumMels; m++ {
			var acc float64
			filt := fb.Filters[m]
			for f, w := range filt {
				if w != 0 {
					acc += w * row[f]
				}
			}
			out.Set(t, m, acc)
		}
	}
	return nil
}

// LogCompress applies log(x + eps) in place, the final step of a log-Mel
// front-end.
func LogCompress(s *Spectrogram, eps float64) {
	for i, v := range s.Data {
		s.Data[i] = math.Log(v + eps)
	}
}

// MelConfig bundles the full waveform→log-Mel pipeline parameters.
type MelConfig struct {
	STFT    STFTConfig
	NumMels int
	FMin    float64
	FMax    float64
	LogEps  float64
}

// DefaultMelConfig returns an 80-channel log-Mel front-end over the
// default STFT framing — the feature set used by the paper's speech
// workloads (Mel spectrogram, Section II-A).
func DefaultMelConfig() MelConfig {
	return MelConfig{STFT: DefaultSTFTConfig(), NumMels: 80, FMin: 20, FMax: 7600, LogEps: 1e-10}
}

// LogMelSpectrogram runs the full front-end: Hann STFT → power spectrum →
// Mel filterbank → log compression. The filterbank is built once per
// distinct config (melFilterbankFor) rather than per call; hot paths
// that also want to reuse FFT and spectrogram scratch should hold a
// MelPlan and call LogMelInto.
func LogMelSpectrogram(signal []float64, cfg MelConfig) (*Spectrogram, error) {
	power, err := PowerSTFT(signal, cfg.STFT)
	if err != nil {
		return nil, err
	}
	fb, err := melFilterbankFor(cfg, power.Bins)
	if err != nil {
		return nil, err
	}
	mel, err := fb.Apply(power)
	if err != nil {
		return nil, err
	}
	eps := cfg.LogEps
	if eps <= 0 {
		eps = 1e-10
	}
	LogCompress(mel, eps)
	return mel, nil
}
