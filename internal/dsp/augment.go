package dsp

import (
	"fmt"
	"math"
	"math/rand"
)

// TimeMask zeroes (to fillValue) a random contiguous span of at most
// maxWidth frames — SpecAugment's time masking. A nil rng or
// non-positive maxWidth leaves s unchanged. It returns the masked span
// [start, start+width) for verification.
func TimeMask(s *Spectrogram, maxWidth int, fillValue float64, rng *rand.Rand) (start, width int) {
	if rng == nil || maxWidth <= 0 || s.Frames == 0 {
		return 0, 0
	}
	if maxWidth > s.Frames {
		maxWidth = s.Frames
	}
	width = 1 + rng.Intn(maxWidth)
	start = rng.Intn(s.Frames - width + 1)
	for t := start; t < start+width; t++ {
		for f := 0; f < s.Bins; f++ {
			s.Set(t, f, fillValue)
		}
	}
	return start, width
}

// FreqMask zeroes (to fillValue) a random contiguous span of at most
// maxWidth Mel channels — SpecAugment's frequency masking. It returns the
// masked span for verification.
func FreqMask(s *Spectrogram, maxWidth int, fillValue float64, rng *rand.Rand) (start, width int) {
	if rng == nil || maxWidth <= 0 || s.Bins == 0 {
		return 0, 0
	}
	if maxWidth > s.Bins {
		maxWidth = s.Bins
	}
	width = 1 + rng.Intn(maxWidth)
	start = rng.Intn(s.Bins - width + 1)
	for t := 0; t < s.Frames; t++ {
		for f := start; f < start+width; f++ {
			s.Set(t, f, fillValue)
		}
	}
	return start, width
}

// AddNoise adds zero-mean Gaussian noise with the given standard
// deviation to every sample of signal, in place — the paper's example
// audio augmentation ("add some noise into sound").
func AddNoise(signal []float64, stddev float64, rng *rand.Rand) {
	if rng == nil || stddev <= 0 {
		return
	}
	for i := range signal {
		signal[i] += rng.NormFloat64() * stddev
	}
}

// Normalize standardizes the spectrogram in place to zero mean and unit
// variance over all cells (the "Norm" engine in Table III). Constant
// inputs become all zeros. It returns the pre-normalization mean and
// standard deviation.
func Normalize(s *Spectrogram) (mean, std float64) {
	n := len(s.Data)
	if n == 0 {
		return 0, 0
	}
	for _, v := range s.Data {
		mean += v
	}
	mean /= float64(n)
	for _, v := range s.Data {
		d := v - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(n))
	if std == 0 {
		for i := range s.Data {
			s.Data[i] = 0
		}
		return mean, 0
	}
	for i, v := range s.Data {
		s.Data[i] = (v - mean) / std
	}
	return mean, std
}

// SynthConfig controls synthetic audio generation — the Librispeech
// stand-in. Streams are sums of a few sinusoid "formants" with optional
// noise floor, deterministic per seed.
type SynthConfig struct {
	SampleRate int     // Hz
	Duration   float64 // seconds
	NumTones   int     // sinusoid components
	NoiseStd   float64 // Gaussian noise floor
}

// DefaultSynthConfig matches the paper's dataset statistics: 6.96 s
// average Librispeech utterances at 16 kHz.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{SampleRate: 16000, Duration: 6.96, NumTones: 4, NoiseStd: 0.01}
}

// SynthesizeAudio generates a deterministic pseudo-speech waveform for
// the given seed. Values lie in roughly [-1, 1].
func SynthesizeAudio(cfg SynthConfig, seed int64) ([]float64, error) {
	if cfg.SampleRate <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("dsp: invalid synth config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(seed))
	n := int(float64(cfg.SampleRate) * cfg.Duration)
	signal := make([]float64, n)
	tones := cfg.NumTones
	if tones <= 0 {
		tones = 1
	}
	type tone struct{ freq, amp, phase float64 }
	ts := make([]tone, tones)
	for i := range ts {
		ts[i] = tone{
			freq:  80 + rng.Float64()*3000, // speech-band formants
			amp:   0.2 + rng.Float64()*0.6,
			phase: rng.Float64() * 2 * math.Pi,
		}
	}
	var ampSum float64
	for _, tn := range ts {
		ampSum += tn.amp
	}
	for i := range signal {
		t := float64(i) / float64(cfg.SampleRate)
		var v float64
		for _, tn := range ts {
			v += tn.amp * math.Sin(2*math.Pi*tn.freq*t+tn.phase)
		}
		signal[i] = v / ampSum
	}
	AddNoise(signal, cfg.NoiseStd, rng)
	return signal, nil
}

// PCM16Encode quantizes a [-1,1] float signal to interleaved little-endian
// int16 PCM bytes — the stored on-SSD format of audio datasets, used to
// size storage reads.
func PCM16Encode(signal []float64) []byte {
	out := make([]byte, 2*len(signal))
	for i, v := range signal {
		if v > 1 {
			v = 1
		} else if v < -1 {
			v = -1
		}
		s := int16(v * 32767)
		out[2*i] = byte(uint16(s))
		out[2*i+1] = byte(uint16(s) >> 8)
	}
	return out
}

// PCM16Decode reverses PCM16Encode. Odd-length input returns an error.
func PCM16Decode(b []byte) ([]float64, error) {
	return PCM16DecodeInto(nil, b)
}

// PCM16DecodeInto decodes into dst's capacity (growing it when needed)
// and returns the resized slice — the reuse seam for the scratch-based
// prepare path. Odd-length input returns an error.
func PCM16DecodeInto(dst []float64, b []byte) ([]float64, error) {
	if len(b)%2 != 0 {
		return nil, fmt.Errorf("dsp: PCM16 payload has odd length %d", len(b))
	}
	n := len(b) / 2
	if cap(dst) < n {
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
	}
	for i := range dst {
		s := int16(uint16(b[2*i]) | uint16(b[2*i+1])<<8)
		dst[i] = float64(s) / 32767
	}
	return dst, nil
}
