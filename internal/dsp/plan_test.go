package dsp

import (
	"math/rand"
	"testing"
)

func randSignal(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.Float64()*2 - 1
	}
	return s
}

// TestFFTPlanBitIdenticalToFFT checks the cached-twiddle transform
// reproduces the inline recurrence bit for bit, across sizes and seeds.
func TestFFTPlanBitIdenticalToFFT(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64, 512} {
		plan, err := NewFFTPlan(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for seed := int64(0); seed < 3; seed++ {
			sig := randSignal(seed, n)
			a := make([]complex128, n)
			b := make([]complex128, n)
			for i, v := range sig {
				a[i] = complex(v, 0)
				b[i] = complex(v, 0)
			}
			if err := FFT(a); err != nil {
				t.Fatal(err)
			}
			if err := plan.Transform(b); err != nil {
				t.Fatal(err)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("n=%d seed=%d bin %d: plan %v, FFT %v", n, seed, i, b[i], a[i])
				}
			}
			if err := plan.Inverse(b); err != nil {
				t.Fatal(err)
			}
			if err := IFFT(a); err != nil {
				t.Fatal(err)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("n=%d seed=%d inverse bin %d differs", n, seed, i)
				}
			}
		}
	}
	if _, err := NewFFTPlan(48); err != ErrNotPow2 {
		t.Errorf("NewFFTPlan(48) = %v, want ErrNotPow2", err)
	}
}

// TestMelFilterbankCacheShared is the satellite regression test: two
// lookups with the same config must return the same filterbank.
func TestMelFilterbankCacheShared(t *testing.T) {
	cfg := DefaultMelConfig()
	bins := NextPow2(cfg.STFT.WindowSize)/2 + 1
	a, err := melFilterbankFor(cfg, bins)
	if err != nil {
		t.Fatal(err)
	}
	b, err := melFilterbankFor(cfg, bins)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same config produced two filterbanks — cache not shared")
	}
	other := cfg
	other.NumMels = 40
	c, err := melFilterbankFor(other, bins)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different configs must not share a filterbank")
	}
	// Two plans with the same config share the filterbank too.
	p1, err := NewMelPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewMelPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1.fb != p2.fb {
		t.Error("plans with the same config must share the filterbank")
	}
}

// TestMelPlanBitIdentical checks LogMelInto against LogMelSpectrogram
// across seeds, including reuse of the same destination.
func TestMelPlanBitIdentical(t *testing.T) {
	cfg := DefaultMelConfig()
	cfg.STFT.WindowSize = 256
	cfg.STFT.HopSize = 128
	cfg.NumMels = 40
	plan, err := NewMelPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var dst Spectrogram
	for seed := int64(1); seed <= 4; seed++ {
		sig := randSignal(seed, 4000+int(seed)*37)
		want, err := LogMelSpectrogram(sig, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.LogMelInto(&dst, sig); err != nil {
			t.Fatal(err)
		}
		if dst.Frames != want.Frames || dst.Bins != want.Bins {
			t.Fatalf("seed %d: shape %dx%d, want %dx%d", seed, dst.Frames, dst.Bins, want.Frames, want.Bins)
		}
		for i := range want.Data {
			if dst.Data[i] != want.Data[i] {
				t.Fatalf("seed %d cell %d: plan %v, legacy %v", seed, i, dst.Data[i], want.Data[i])
			}
		}
	}
}

// TestMFCCPlanBitIdentical checks MFCCInto against MFCC across seeds.
func TestMFCCPlanBitIdentical(t *testing.T) {
	cfg := DefaultMFCCConfig()
	cfg.Mel.STFT.WindowSize = 256
	cfg.Mel.STFT.HopSize = 128
	cfg.Mel.NumMels = 40
	plan, err := NewMFCCPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var dst Spectrogram
	for seed := int64(1); seed <= 4; seed++ {
		sig := randSignal(seed, 5000)
		want, err := MFCC(sig, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.MFCCInto(&dst, sig); err != nil {
			t.Fatal(err)
		}
		if dst.Frames != want.Frames || dst.Bins != want.Bins {
			t.Fatalf("seed %d: shape %dx%d, want %dx%d", seed, dst.Frames, dst.Bins, want.Frames, want.Bins)
		}
		for i := range want.Data {
			if dst.Data[i] != want.Data[i] {
				t.Fatalf("seed %d cell %d: plan %v, legacy %v", seed, i, dst.Data[i], want.Data[i])
			}
		}
	}
	bad := cfg
	bad.NumCoeffs = 0
	if _, err := NewMFCCPlan(bad); err == nil {
		t.Error("NumCoeffs 0 should fail")
	}
}

// TestMelPlanSteadyStateAllocs: a warmed plan writing into a reused
// destination should not allocate.
func TestMelPlanSteadyStateAllocs(t *testing.T) {
	cfg := DefaultMelConfig()
	cfg.STFT.WindowSize = 256
	cfg.STFT.HopSize = 128
	cfg.NumMels = 40
	plan, err := NewMelPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sig := randSignal(7, 4096)
	var dst Spectrogram
	if err := plan.LogMelInto(&dst, sig); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := plan.LogMelInto(&dst, sig); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm LogMelInto allocates %.1f objects/call, want 0", allocs)
	}
}

// TestPCM16DecodeInto checks reuse semantics and identity with the
// allocating variant.
func TestPCM16DecodeInto(t *testing.T) {
	sig := randSignal(3, 333)
	b := PCM16Encode(sig)
	want, err := PCM16Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 0, 512)
	got, err := PCM16DecodeInto(buf, b)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[:1][0] {
		t.Error("PCM16DecodeInto did not reuse the provided capacity")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: %v vs %v", i, got[i], want[i])
		}
	}
	if _, err := PCM16DecodeInto(nil, []byte{1}); err == nil {
		t.Error("odd-length payload should fail")
	}
}

// TestSpectrogramReset checks capacity reuse and zeroing.
func TestSpectrogramReset(t *testing.T) {
	var s Spectrogram
	s.Reset(4, 8)
	for i := range s.Data {
		s.Data[i] = 1
	}
	p := &s.Data[0]
	s.Reset(2, 8)
	if &s.Data[0] != p {
		t.Error("shrinking Reset should reuse Data")
	}
	for i, v := range s.Data {
		if v != 0 {
			t.Fatalf("cell %d not zeroed after Reset: %v", i, v)
		}
	}
	s.Reset(100, 100)
	if len(s.Data) != 100*100 {
		t.Errorf("grown Reset len %d", len(s.Data))
	}
}
