package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// This file adds Plan-style contexts to the audio front-end: precomputed
// twiddle factors, window tables, Mel filterbanks, and DCT cosine tables
// that are built once and reused across calls, plus *Into variants that
// write into caller-provided destinations. Plans are the dsp layer of
// the zero-allocation sample path (DESIGN.md §12): a steady-state
// prepare loop holds one plan per worker and recycles its scratch
// instead of reallocating tables per sample.
//
// Every plan computes its tables with exactly the arithmetic the
// non-plan functions use (same recurrences, same expression order), so
// plan outputs are bit-identical to the one-shot entry points — a
// property the tests assert.

// FFTPlan caches the per-stage twiddle factors for one transform
// length. The tables are immutable after construction, so a single plan
// is safe for concurrent use.
type FFTPlan struct {
	n   int
	fwd [][]complex128 // per butterfly stage: size = 2<<s, len = size/2
	inv [][]complex128
}

// NewFFTPlan builds a plan for length-n transforms. n must be a power
// of two (ErrNotPow2 otherwise); n == 0 yields a no-op plan.
func NewFFTPlan(n int) (*FFTPlan, error) {
	if n&(n-1) != 0 {
		return nil, ErrNotPow2
	}
	p := &FFTPlan{n: n}
	for size := 2; size <= n; size <<= 1 {
		p.fwd = append(p.fwd, twiddles(size, false))
		p.inv = append(p.inv, twiddles(size, true))
	}
	return p, nil
}

// twiddles reproduces the exact recurrence the inline fft uses
// (w starts at 1 and is multiplied by wStep), so cached butterflies are
// bit-identical to uncached ones.
func twiddles(size int, inverse bool) []complex128 {
	ang := 2 * math.Pi / float64(size)
	if !inverse {
		ang = -ang
	}
	wStep := complex(math.Cos(ang), math.Sin(ang))
	w := complex(1, 0)
	tw := make([]complex128, size/2)
	for k := range tw {
		tw[k] = w
		w *= wStep
	}
	return tw
}

// N returns the transform length the plan serves.
func (p *FFTPlan) N() int { return p.n }

// Transform computes the in-place forward DFT of x using the cached
// twiddles. len(x) must equal the plan length.
func (p *FFTPlan) Transform(x []complex128) error { return p.run(x, p.fwd) }

// Inverse computes the in-place inverse DFT of x (including the 1/n
// scale) using the cached twiddles.
func (p *FFTPlan) Inverse(x []complex128) error {
	if err := p.run(x, p.inv); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

func (p *FFTPlan) run(x []complex128, tables [][]complex128) error {
	n := len(x)
	if n != p.n {
		return fmt.Errorf("dsp: plan length %d, input length %d", p.n, n)
	}
	if n == 0 {
		return nil
	}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for s, tw := range tables {
		size := 2 << uint(s)
		half := size / 2
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * tw[k]
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
	return nil
}

// --- global table caches ------------------------------------------------

var (
	planMu   sync.RWMutex
	fftPlans = map[int]*FFTPlan{}
	melFBs   = map[melFBKey]*MelFilterbank{}
	dctTabs  = map[int][]float64{}
)

type melFBKey struct {
	cfg  MelConfig
	bins int
}

// fftPlanFor returns the shared plan for length n, building it on first
// use. Plans are immutable, so sharing is safe.
func fftPlanFor(n int) (*FFTPlan, error) {
	planMu.RLock()
	p, ok := fftPlans[n]
	planMu.RUnlock()
	if ok {
		return p, nil
	}
	p, err := NewFFTPlan(n)
	if err != nil {
		return nil, err
	}
	planMu.Lock()
	if prev, ok := fftPlans[n]; ok {
		p = prev
	} else {
		fftPlans[n] = p
	}
	planMu.Unlock()
	return p, nil
}

// melFilterbankFor returns the shared filterbank for (cfg, bins),
// building it on first use. Filterbanks are read-only after
// construction, so callers must not mutate the result.
func melFilterbankFor(cfg MelConfig, bins int) (*MelFilterbank, error) {
	key := melFBKey{cfg: cfg, bins: bins}
	planMu.RLock()
	fb, ok := melFBs[key]
	planMu.RUnlock()
	if ok {
		return fb, nil
	}
	fb, err := NewMelFilterbank(cfg.NumMels, bins, cfg.STFT.SampleRate, cfg.FMin, cfg.FMax)
	if err != nil {
		return nil, err
	}
	planMu.Lock()
	if prev, ok := melFBs[key]; ok {
		fb = prev
	} else {
		melFBs[key] = fb
	}
	planMu.Unlock()
	return fb, nil
}

// dctTableFor returns the shared DCT-II cosine table for length n:
// tab[k*n+t] = cos(π/n·(t+0.5)·k), the exact expression DCT2 evaluates.
func dctTableFor(n int) []float64 {
	planMu.RLock()
	tab, ok := dctTabs[n]
	planMu.RUnlock()
	if ok {
		return tab
	}
	tab = make([]float64, n*n)
	for k := 0; k < n; k++ {
		for t := 0; t < n; t++ {
			tab[k*n+t] = math.Cos(math.Pi / float64(n) * (float64(t) + 0.5) * float64(k))
		}
	}
	planMu.Lock()
	if prev, ok := dctTabs[n]; ok {
		tab = prev
	} else {
		dctTabs[n] = tab
	}
	planMu.Unlock()
	return tab
}

// --- MelPlan ------------------------------------------------------------

// MelPlan is a reusable waveform→log-Mel context: it owns the Hann
// window, the (shared) Mel filterbank and FFT plan, and the complex and
// power-spectrum scratch the transform cycles through. A MelPlan is NOT
// safe for concurrent use — hold one per worker.
type MelPlan struct {
	cfg    MelConfig
	eps    float64
	window []float64
	fft    *FFTPlan
	fb     *MelFilterbank
	fftLen int
	bins   int
	buf    []complex128
	power  Spectrogram
}

// NewMelPlan validates cfg and precomputes every table the front-end
// needs.
func NewMelPlan(cfg MelConfig) (*MelPlan, error) {
	if err := cfg.STFT.Validate(); err != nil {
		return nil, err
	}
	fftLen := NextPow2(cfg.STFT.WindowSize)
	bins := fftLen/2 + 1
	fft, err := fftPlanFor(fftLen)
	if err != nil {
		return nil, err
	}
	fb, err := melFilterbankFor(cfg, bins)
	if err != nil {
		return nil, err
	}
	eps := cfg.LogEps
	if eps <= 0 {
		eps = 1e-10
	}
	return &MelPlan{
		cfg:    cfg,
		eps:    eps,
		window: HannWindow(cfg.STFT.WindowSize),
		fft:    fft,
		fb:     fb,
		fftLen: fftLen,
		bins:   bins,
		buf:    make([]complex128, fftLen),
	}, nil
}

// Config returns the configuration the plan was built for.
func (p *MelPlan) Config() MelConfig { return p.cfg }

// LogMelInto runs the full front-end (Hann STFT → power spectrum → Mel
// filterbank → log compression) into dst, reusing dst's Data capacity.
// The result is bit-identical to LogMelSpectrogram(signal, cfg).
func (p *MelPlan) LogMelInto(dst *Spectrogram, signal []float64) error {
	cfg := p.cfg.STFT
	frames := cfg.NumFrames(len(signal))
	p.power.Reset(frames, p.bins)
	for t := 0; t < frames; t++ {
		start := t * cfg.HopSize
		for i := 0; i < cfg.WindowSize; i++ {
			p.buf[i] = complex(signal[start+i]*p.window[i], 0)
		}
		for i := cfg.WindowSize; i < p.fftLen; i++ {
			p.buf[i] = 0
		}
		if err := p.fft.Transform(p.buf); err != nil {
			return err
		}
		for f := 0; f < p.bins; f++ {
			re, im := real(p.buf[f]), imag(p.buf[f])
			p.power.Set(t, f, re*re+im*im)
		}
	}
	if err := p.fb.ApplyInto(dst, &p.power); err != nil {
		return err
	}
	LogCompress(dst, p.eps)
	return nil
}

// --- MFCCPlan -----------------------------------------------------------

// MFCCPlan is a reusable MFCC context wrapping a MelPlan plus the
// (shared) DCT-II cosine table and the pre-emphasis/log-Mel scratch.
// Not safe for concurrent use — hold one per worker.
type MFCCPlan struct {
	cfg    MFCCConfig
	mel    *MelPlan
	cos    []float64 // dctTableFor(NumMels)
	work   []float64
	melOut Spectrogram
}

// NewMFCCPlan validates cfg and precomputes the full table set.
func NewMFCCPlan(cfg MFCCConfig) (*MFCCPlan, error) {
	if cfg.NumCoeffs <= 0 || cfg.NumCoeffs > cfg.Mel.NumMels {
		return nil, fmt.Errorf("dsp: MFCC coefficients %d outside [1,%d]", cfg.NumCoeffs, cfg.Mel.NumMels)
	}
	mel, err := NewMelPlan(cfg.Mel)
	if err != nil {
		return nil, err
	}
	return &MFCCPlan{cfg: cfg, mel: mel, cos: dctTableFor(cfg.Mel.NumMels)}, nil
}

// MFCCInto computes MFCC features into dst, reusing dst's Data
// capacity. The result is bit-identical to MFCC(signal, cfg).
func (p *MFCCPlan) MFCCInto(dst *Spectrogram, signal []float64) error {
	p.work = append(p.work[:0], signal...)
	if p.cfg.PreEmphasisAlpha > 0 {
		PreEmphasis(p.work, p.cfg.PreEmphasisAlpha)
	}
	if err := p.mel.LogMelInto(&p.melOut, p.work); err != nil {
		return err
	}
	n := p.melOut.Bins
	nc := p.cfg.NumCoeffs
	dst.Reset(p.melOut.Frames, nc)
	scale0 := math.Sqrt(1 / float64(n))
	scale := math.Sqrt(2 / float64(n))
	for t := 0; t < p.melOut.Frames; t++ {
		row := p.melOut.Data[t*n : (t+1)*n]
		for k := 0; k < nc; k++ {
			var sum float64
			cosRow := p.cos[k*n : (k+1)*n]
			for ti, x := range row {
				sum += x * cosRow[ti]
			}
			if k == 0 {
				dst.Data[t*nc+k] = sum * scale0
			} else {
				dst.Data[t*nc+k] = sum * scale
			}
		}
	}
	return nil
}
