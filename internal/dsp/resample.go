package dsp

import (
	"fmt"
	"math"
)

// Resample converts a signal from one sample rate to another with linear
// interpolation — the rate-normalization step real speech front-ends run
// before the STFT (datasets mix 8/16/44.1 kHz material; the paper's
// point that "the required resource also depends on the original data
// features (e.g., sampling rate)" is exactly this op's cost varying with
// input rate).
func Resample(signal []float64, fromRate, toRate int) ([]float64, error) {
	if fromRate <= 0 || toRate <= 0 {
		return nil, fmt.Errorf("dsp: invalid rates %d→%d", fromRate, toRate)
	}
	if len(signal) == 0 {
		return nil, nil
	}
	if fromRate == toRate {
		return append([]float64(nil), signal...), nil
	}
	ratio := float64(fromRate) / float64(toRate)
	outLen := int(math.Ceil(float64(len(signal)) / ratio))
	out := make([]float64, outLen)
	for i := range out {
		pos := float64(i) * ratio
		i0 := int(pos)
		if i0 >= len(signal)-1 {
			out[i] = signal[len(signal)-1]
			continue
		}
		frac := pos - float64(i0)
		out[i] = signal[i0]*(1-frac) + signal[i0+1]*frac
	}
	return out, nil
}

// DurationSeconds returns the signal length in seconds at a rate.
func DurationSeconds(n, rate int) float64 {
	if rate <= 0 {
		return 0
	}
	return float64(n) / float64(rate)
}
