package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPreEmphasisFilter(t *testing.T) {
	x := []float64{1, 1, 1, 1}
	PreEmphasis(x, 0.97)
	if x[0] != 1 {
		t.Errorf("x[0] = %v, want unchanged", x[0])
	}
	for i := 1; i < 4; i++ {
		if math.Abs(x[i]-0.03) > 1e-12 {
			t.Errorf("x[%d] = %v, want 0.03", i, x[i])
		}
	}
	PreEmphasis(nil, 0.97) // no panic on empty
}

func TestPreEmphasisBoostsHighFrequencies(t *testing.T) {
	// A fast alternating signal should keep most of its energy; a slow
	// one should lose most of it.
	n := 1024
	fast := make([]float64, n)
	slow := make([]float64, n)
	for i := range fast {
		fast[i] = math.Sin(math.Pi * float64(i) * 0.9) // near Nyquist
		slow[i] = math.Sin(2 * math.Pi * float64(i) / 512)
	}
	energy := func(x []float64) float64 {
		var s float64
		for _, v := range x {
			s += v * v
		}
		return s
	}
	eFast, eSlow := energy(fast), energy(slow)
	PreEmphasis(fast, 0.97)
	PreEmphasis(slow, 0.97)
	if energy(fast)/eFast < 1 {
		t.Errorf("high-frequency energy ratio = %v, want > 1", energy(fast)/eFast)
	}
	if energy(slow)/eSlow > 0.2 {
		t.Errorf("low-frequency energy ratio = %v, want ≪ 1", energy(slow)/eSlow)
	}
}

func TestDCT2RoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		back := IDCT2(DCT2(x))
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDCT2IsOrthonormal(t *testing.T) {
	// Parseval for an orthonormal transform: energy preserved.
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 32)
	var ex float64
	for i := range x {
		x[i] = rng.NormFloat64()
		ex += x[i] * x[i]
	}
	c := DCT2(x)
	var ec float64
	for _, v := range c {
		ec += v * v
	}
	if math.Abs(ex-ec) > 1e-9*ex {
		t.Errorf("energy not preserved: %v vs %v", ex, ec)
	}
}

func TestDCT2ConstantSignal(t *testing.T) {
	x := []float64{2, 2, 2, 2}
	c := DCT2(x)
	if math.Abs(c[0]-4) > 1e-12 { // 2·√4 = 4 under orthonormal scaling
		t.Errorf("DC coefficient = %v, want 4", c[0])
	}
	for k := 1; k < 4; k++ {
		if math.Abs(c[k]) > 1e-12 {
			t.Errorf("AC coefficient %d = %v, want 0", k, c[k])
		}
	}
	if len(DCT2(nil)) != 0 || len(IDCT2(nil)) != 0 {
		t.Error("empty transforms should return empty")
	}
}

func TestMFCCShape(t *testing.T) {
	sig, err := SynthesizeAudio(SynthConfig{SampleRate: 16000, Duration: 1, NumTones: 3, NoiseStd: 0.01}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultMFCCConfig()
	out, err := MFCC(sig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Bins != 13 {
		t.Errorf("coefficients = %d, want 13", out.Bins)
	}
	if out.Frames != cfg.Mel.STFT.NumFrames(len(sig)) {
		t.Errorf("frames = %d", out.Frames)
	}
	for i, v := range out.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("coefficient %d is %v", i, v)
		}
	}
}

func TestMFCCDoesNotModifyInput(t *testing.T) {
	sig, _ := SynthesizeAudio(SynthConfig{SampleRate: 16000, Duration: 0.5, NumTones: 2}, 1)
	orig := append([]float64(nil), sig...)
	if _, err := MFCC(sig, DefaultMFCCConfig()); err != nil {
		t.Fatal(err)
	}
	for i := range sig {
		if sig[i] != orig[i] {
			t.Fatal("MFCC modified its input signal")
		}
	}
}

func TestMFCCValidation(t *testing.T) {
	cfg := DefaultMFCCConfig()
	cfg.NumCoeffs = 0
	if _, err := MFCC(make([]float64, 1000), cfg); err == nil {
		t.Error("zero coefficients accepted")
	}
	cfg.NumCoeffs = cfg.Mel.NumMels + 1
	if _, err := MFCC(make([]float64, 1000), cfg); err == nil {
		t.Error("too many coefficients accepted")
	}
}

func TestDeltasOfLinearRampAreConstant(t *testing.T) {
	s := NewSpectrogram(20, 2)
	for tt := 0; tt < 20; tt++ {
		s.Set(tt, 0, float64(tt)*3)
		s.Set(tt, 1, 5)
	}
	d, err := Deltas(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Interior frames of a slope-3 ramp have delta exactly 3.
	for tt := 2; tt < 18; tt++ {
		if math.Abs(d.At(tt, 0)-3) > 1e-12 {
			t.Errorf("delta[%d] = %v, want 3", tt, d.At(tt, 0))
		}
		if d.At(tt, 1) != 0 {
			t.Errorf("constant channel delta = %v, want 0", d.At(tt, 1))
		}
	}
}

func TestDeltasValidation(t *testing.T) {
	if _, err := Deltas(NewSpectrogram(4, 4), 0); err == nil {
		t.Error("zero width accepted")
	}
}
