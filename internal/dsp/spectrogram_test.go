package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSTFTConfigValidate(t *testing.T) {
	good := DefaultSTFTConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bads := []STFTConfig{
		{SampleRate: 0, WindowSize: 400, HopSize: 160},
		{SampleRate: 16000, WindowSize: 0, HopSize: 160},
		{SampleRate: 16000, WindowSize: 400, HopSize: 0},
	}
	for i, c := range bads {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNumFrames(t *testing.T) {
	c := STFTConfig{SampleRate: 16000, WindowSize: 400, HopSize: 160}
	cases := map[int]int{0: 0, 399: 0, 400: 1, 559: 1, 560: 2, 16000: 98}
	for n, want := range cases {
		if got := c.NumFrames(n); got != want {
			t.Errorf("NumFrames(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPowerSTFTShape(t *testing.T) {
	cfg := DefaultSTFTConfig()
	sig := make([]float64, 16000) // 1 second
	s, err := PowerSTFT(sig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Frames != cfg.NumFrames(len(sig)) {
		t.Errorf("frames = %d, want %d", s.Frames, cfg.NumFrames(len(sig)))
	}
	if s.Bins != 257 { // NextPow2(400)=512 → 257 bins
		t.Errorf("bins = %d, want 257", s.Bins)
	}
}

func TestPowerSTFTToneLandsInRightBin(t *testing.T) {
	cfg := DefaultSTFTConfig()
	const freq = 1000.0
	n := 16000
	sig := make([]float64, n)
	for i := range sig {
		sig[i] = math.Sin(2 * math.Pi * freq * float64(i) / float64(cfg.SampleRate))
	}
	s, err := PowerSTFT(sig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Expected bin: freq/ (rate/fftLen) = 1000/(16000/512) = 32.
	fftLen := NextPow2(cfg.WindowSize)
	wantBin := int(math.Round(freq * float64(fftLen) / float64(cfg.SampleRate)))
	mid := s.Frames / 2
	peak := 0
	for f := 0; f < s.Bins; f++ {
		if s.At(mid, f) > s.At(mid, peak) {
			peak = f
		}
	}
	if abs := math.Abs(float64(peak - wantBin)); abs > 1 {
		t.Errorf("peak bin = %d, want ≈%d", peak, wantBin)
	}
}

func TestPowerSTFTNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sig := make([]float64, 2000)
		for i := range sig {
			sig[i] = rng.NormFloat64()
		}
		s, err := PowerSTFT(sig, DefaultSTFTConfig())
		if err != nil {
			return false
		}
		for _, v := range s.Data {
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPowerSTFTShortSignal(t *testing.T) {
	s, err := PowerSTFT(make([]float64, 100), DefaultSTFTConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.Frames != 0 {
		t.Errorf("frames = %d, want 0", s.Frames)
	}
}

func TestMelScaleRoundTrip(t *testing.T) {
	for _, hz := range []float64{0, 100, 440, 1000, 4000, 8000} {
		back := MelToHz(HzToMel(hz))
		if math.Abs(back-hz) > 1e-9*(1+hz) {
			t.Errorf("round trip %v -> %v", hz, back)
		}
	}
	// Mel scale is monotonically increasing.
	prev := -1.0
	for hz := 0.0; hz <= 8000; hz += 50 {
		m := HzToMel(hz)
		if m <= prev {
			t.Fatalf("Mel scale not increasing at %v Hz", hz)
		}
		prev = m
	}
}

func TestMelFilterbankShapeAndCoverage(t *testing.T) {
	fb, err := NewMelFilterbank(80, 257, 16000, 20, 7600)
	if err != nil {
		t.Fatal(err)
	}
	if len(fb.Filters) != 80 {
		t.Fatalf("filters = %d", len(fb.Filters))
	}
	for m, row := range fb.Filters {
		if len(row) != 257 {
			t.Fatalf("filter %d has %d bins", m, len(row))
		}
		var sum float64
		for _, w := range row {
			if w < 0 || w > 1 {
				t.Fatalf("filter %d has weight %v outside [0,1]", m, w)
			}
			sum += w
		}
		if sum == 0 {
			t.Errorf("filter %d is empty", m)
		}
	}
}

func TestMelFilterbankRejectsBadShapes(t *testing.T) {
	cases := []struct {
		mels, bins, rate int
		fmin, fmax       float64
	}{
		{0, 257, 16000, 20, 7600},
		{80, 1, 16000, 20, 7600},
		{80, 257, 0, 20, 7600},
		{80, 257, 16000, 7600, 20},
		{80, 257, 16000, -5, 7600},
	}
	for i, c := range cases {
		if _, err := NewMelFilterbank(c.mels, c.bins, c.rate, c.fmin, c.fmax); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMelFilterbankApplyDimensionMismatch(t *testing.T) {
	fb, _ := NewMelFilterbank(10, 257, 16000, 20, 7600)
	if _, err := fb.Apply(NewSpectrogram(3, 100)); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestLogMelSpectrogramEndToEnd(t *testing.T) {
	sig, err := SynthesizeAudio(DefaultSynthConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultMelConfig()
	mel, err := LogMelSpectrogram(sig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mel.Bins != cfg.NumMels {
		t.Errorf("bins = %d, want %d", mel.Bins, cfg.NumMels)
	}
	wantFrames := cfg.STFT.NumFrames(len(sig))
	if mel.Frames != wantFrames {
		t.Errorf("frames = %d, want %d", mel.Frames, wantFrames)
	}
	for i, v := range mel.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("cell %d is %v", i, v)
		}
	}
}

func TestLogMelDeterministicPerSeed(t *testing.T) {
	a, _ := SynthesizeAudio(DefaultSynthConfig(), 7)
	b, _ := SynthesizeAudio(DefaultSynthConfig(), 7)
	c, _ := SynthesizeAudio(DefaultSynthConfig(), 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different audio")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical audio")
	}
}
