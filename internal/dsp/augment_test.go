package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimeMaskZeroesExactSpan(t *testing.T) {
	s := NewSpectrogram(50, 8)
	for i := range s.Data {
		s.Data[i] = 1
	}
	rng := rand.New(rand.NewSource(3))
	start, width := TimeMask(s, 10, -5, rng)
	if width < 1 || width > 10 {
		t.Fatalf("width = %d", width)
	}
	for tt := 0; tt < s.Frames; tt++ {
		for f := 0; f < s.Bins; f++ {
			want := 1.0
			if tt >= start && tt < start+width {
				want = -5
			}
			if s.At(tt, f) != want {
				t.Fatalf("cell (%d,%d) = %v, want %v", tt, f, s.At(tt, f), want)
			}
		}
	}
}

func TestFreqMaskZeroesExactSpan(t *testing.T) {
	s := NewSpectrogram(20, 40)
	for i := range s.Data {
		s.Data[i] = 2
	}
	rng := rand.New(rand.NewSource(5))
	start, width := FreqMask(s, 7, 0, rng)
	for tt := 0; tt < s.Frames; tt++ {
		for f := 0; f < s.Bins; f++ {
			want := 2.0
			if f >= start && f < start+width {
				want = 0
			}
			if s.At(tt, f) != want {
				t.Fatalf("cell (%d,%d) = %v, want %v", tt, f, s.At(tt, f), want)
			}
		}
	}
}

func TestMasksNoopWithoutRNG(t *testing.T) {
	s := NewSpectrogram(5, 5)
	for i := range s.Data {
		s.Data[i] = 9
	}
	TimeMask(s, 3, 0, nil)
	FreqMask(s, 3, 0, nil)
	TimeMask(s, 0, 0, rand.New(rand.NewSource(1)))
	for _, v := range s.Data {
		if v != 9 {
			t.Fatal("noop mask modified data")
		}
	}
}

func TestMaskWidthClampedToDimension(t *testing.T) {
	s := NewSpectrogram(3, 3)
	rng := rand.New(rand.NewSource(1))
	_, w := TimeMask(s, 100, 0, rng)
	if w > 3 {
		t.Errorf("time mask width %d exceeds frames", w)
	}
	_, w = FreqMask(s, 100, 0, rng)
	if w > 3 {
		t.Errorf("freq mask width %d exceeds bins", w)
	}
}

func TestAddNoiseStatistics(t *testing.T) {
	sig := make([]float64, 200000)
	AddNoise(sig, 0.5, rand.New(rand.NewSource(11)))
	var mean, varAcc float64
	for _, v := range sig {
		mean += v
	}
	mean /= float64(len(sig))
	for _, v := range sig {
		varAcc += (v - mean) * (v - mean)
	}
	std := math.Sqrt(varAcc / float64(len(sig)))
	if math.Abs(mean) > 0.01 {
		t.Errorf("noise mean = %v, want ≈0", mean)
	}
	if math.Abs(std-0.5) > 0.01 {
		t.Errorf("noise std = %v, want ≈0.5", std)
	}
}

func TestAddNoiseNoop(t *testing.T) {
	sig := []float64{1, 2, 3}
	AddNoise(sig, 0, rand.New(rand.NewSource(1)))
	AddNoise(sig, 0.5, nil)
	if sig[0] != 1 || sig[1] != 2 || sig[2] != 3 {
		t.Error("noop AddNoise modified signal")
	}
}

func TestNormalizeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSpectrogram(10, 10)
		for i := range s.Data {
			s.Data[i] = rng.NormFloat64()*3 + 7
		}
		Normalize(s)
		var mean float64
		for _, v := range s.Data {
			mean += v
		}
		mean /= float64(len(s.Data))
		var varAcc float64
		for _, v := range s.Data {
			varAcc += (v - mean) * (v - mean)
		}
		std := math.Sqrt(varAcc / float64(len(s.Data)))
		return math.Abs(mean) < 1e-9 && math.Abs(std-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeConstantInput(t *testing.T) {
	s := NewSpectrogram(4, 4)
	for i := range s.Data {
		s.Data[i] = 5
	}
	mean, std := Normalize(s)
	if mean != 5 || std != 0 {
		t.Errorf("mean=%v std=%v, want 5, 0", mean, std)
	}
	for _, v := range s.Data {
		if v != 0 {
			t.Fatal("constant input should normalize to zeros")
		}
	}
}

func TestNormalizeEmpty(t *testing.T) {
	s := NewSpectrogram(0, 0)
	if m, sd := Normalize(s); m != 0 || sd != 0 {
		t.Errorf("empty normalize = %v, %v", m, sd)
	}
}

func TestSynthesizeAudioShapeAndRange(t *testing.T) {
	cfg := DefaultSynthConfig()
	sig, err := SynthesizeAudio(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := int(float64(cfg.SampleRate) * cfg.Duration)
	if len(sig) != wantLen {
		t.Errorf("len = %d, want %d", len(sig), wantLen)
	}
	for i, v := range sig {
		if math.Abs(v) > 1.5 {
			t.Fatalf("sample %d = %v out of range", i, v)
		}
	}
}

func TestSynthesizeAudioRejectsBadConfig(t *testing.T) {
	if _, err := SynthesizeAudio(SynthConfig{SampleRate: 0, Duration: 1}, 1); err == nil {
		t.Error("zero sample rate accepted")
	}
	if _, err := SynthesizeAudio(SynthConfig{SampleRate: 16000, Duration: 0}, 1); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestPCM16RoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sig := make([]float64, 100)
		for i := range sig {
			sig[i] = rng.Float64()*2 - 1
		}
		back, err := PCM16Decode(PCM16Encode(sig))
		if err != nil {
			return false
		}
		for i := range sig {
			if math.Abs(back[i]-sig[i]) > 1.0/32767+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPCM16ClampsOutOfRange(t *testing.T) {
	b := PCM16Encode([]float64{2, -2})
	sig, err := PCM16Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sig[0]-1) > 1e-4 || math.Abs(sig[1]+1) > 1e-4 {
		t.Errorf("clamped decode = %v", sig)
	}
}

func TestPCM16DecodeOddLength(t *testing.T) {
	if _, err := PCM16Decode([]byte{1, 2, 3}); err == nil {
		t.Error("odd-length PCM accepted")
	}
}

func TestPCM16SizeMatchesPaperDatasetStats(t *testing.T) {
	// The paper's Librispeech items average 6.96 s; at 16 kHz 16-bit mono
	// that is ~223 KB on storage, which the storage model relies on.
	sig, _ := SynthesizeAudio(DefaultSynthConfig(), 2)
	size := len(PCM16Encode(sig))
	if size < 200_000 || size > 250_000 {
		t.Errorf("stored audio size = %d bytes, want ≈223 KB", size)
	}
}
