package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestResampleIdentity(t *testing.T) {
	sig := []float64{1, 2, 3, 4}
	out, err := Resample(sig, 16000, 16000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sig {
		if out[i] != sig[i] {
			t.Fatal("identity resample changed values")
		}
	}
	// Returned slice is a copy.
	out[0] = 99
	if sig[0] != 1 {
		t.Error("identity resample aliased the input")
	}
}

func TestResampleLengthRatio(t *testing.T) {
	sig := make([]float64, 16000)
	down, err := Resample(sig, 16000, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(len(down))-8000) > 1 {
		t.Errorf("downsampled length = %d, want ≈8000", len(down))
	}
	up, err := Resample(sig, 16000, 44100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(len(up))-44100) > 2 {
		t.Errorf("upsampled length = %d, want ≈44100", len(up))
	}
}

func TestResamplePreservesToneFrequency(t *testing.T) {
	// A 440 Hz tone at 8 kHz upsampled to 16 kHz must still peak at the
	// bin for 440 Hz under the 16 kHz STFT.
	const freq = 440.0
	src := make([]float64, 8000)
	for i := range src {
		src[i] = math.Sin(2 * math.Pi * freq * float64(i) / 8000)
	}
	up, err := Resample(src, 8000, 16000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSTFTConfig()
	s, err := PowerSTFT(up, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fftLen := NextPow2(cfg.WindowSize)
	wantBin := int(math.Round(freq * float64(fftLen) / float64(cfg.SampleRate)))
	mid := s.Frames / 2
	peak := 0
	for f := 0; f < s.Bins; f++ {
		if s.At(mid, f) > s.At(mid, peak) {
			peak = f
		}
	}
	if math.Abs(float64(peak-wantBin)) > 1 {
		t.Errorf("peak bin after resample = %d, want ≈%d", peak, wantBin)
	}
}

func TestResamplePropertyBounded(t *testing.T) {
	// Linear interpolation never exceeds the input's range.
	f := func(seed int64) bool {
		sig, err := SynthesizeAudio(SynthConfig{SampleRate: 8000, Duration: 0.1, NumTones: 2}, seed)
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range sig {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		out, err := Resample(sig, 8000, 11025)
		if err != nil {
			return false
		}
		for _, v := range out {
			if v < lo-1e-12 || v > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestResampleValidation(t *testing.T) {
	if _, err := Resample([]float64{1}, 0, 8000); err == nil {
		t.Error("zero source rate accepted")
	}
	if _, err := Resample([]float64{1}, 8000, -1); err == nil {
		t.Error("negative target rate accepted")
	}
	out, err := Resample(nil, 8000, 16000)
	if err != nil || out != nil {
		t.Error("empty signal should resample to empty")
	}
}

func TestDurationSeconds(t *testing.T) {
	if DurationSeconds(16000, 16000) != 1 {
		t.Error("1-second duration wrong")
	}
	if DurationSeconds(100, 0) != 0 {
		t.Error("zero rate should give 0")
	}
}
