package dsp

import "testing"

func benchSignal(b *testing.B) []float64 {
	b.Helper()
	sig, err := SynthesizeAudio(DefaultSynthConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	return sig
}

// BenchmarkFFTPlan512 measures one planned 512-point transform
// (steady state: zero allocations).
func BenchmarkFFTPlan512(b *testing.B) {
	plan, err := NewFFTPlan(512)
	if err != nil {
		b.Fatal(err)
	}
	src := make([]complex128, 512)
	for i := range src {
		src[i] = complex(float64(i%101)/101, 0)
	}
	work := make([]complex128, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(work, src)
		if err := plan.Transform(work); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMelPlanLogMel is the planned log-Mel front-end with a reused
// destination — the audio path's per-sample kernel.
func BenchmarkMelPlanLogMel(b *testing.B) {
	sig := benchSignal(b)
	plan, err := NewMelPlan(DefaultMelConfig())
	if err != nil {
		b.Fatal(err)
	}
	var out Spectrogram
	if err := plan.LogMelInto(&out, sig); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := plan.LogMelInto(&out, sig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMFCCPlan is the planned MFCC front-end with a reused
// destination.
func BenchmarkMFCCPlan(b *testing.B) {
	sig := benchSignal(b)
	plan, err := NewMFCCPlan(DefaultMFCCConfig())
	if err != nil {
		b.Fatal(err)
	}
	var out Spectrogram
	if err := plan.MFCCInto(&out, sig); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := plan.MFCCInto(&out, sig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMFCCFresh is the legacy per-call MFCC, the comparison point
// for the plan's table caching.
func BenchmarkMFCCFresh(b *testing.B) {
	sig := benchSignal(b)
	cfg := DefaultMFCCConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MFCC(sig, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
