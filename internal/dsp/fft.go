// Package dsp implements the audio data-preparation substrate of the
// TrainBox reproduction: FFT, windowed STFT, Mel filterbanks, log-Mel
// spectrograms, SpecAugment-style masking and feature normalization —
// the operation set the paper's audio FPGA engine implements (Table III)
// and that the baseline runs on host CPUs.
//
// Everything is implemented from scratch on float64/complex128 with no
// dependencies beyond the standard library. The FFT is an iterative
// radix-2 Cooley–Tukey transform; correctness is established in tests
// against a naive O(n²) DFT and via algebraic properties (linearity,
// Parseval, round-trip).
package dsp

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT computes the in-place forward discrete Fourier transform of x.
// len(x) must be a power of two (ErrNotPow2 otherwise).
func FFT(x []complex128) error { return fft(x, false) }

// IFFT computes the in-place inverse DFT of x, including the 1/n scale,
// so IFFT(FFT(x)) == x up to rounding. len(x) must be a power of two.
func IFFT(x []complex128) error {
	if err := fft(x, true); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

// ErrNotPow2 is returned when a transform length is not a power of two.
var ErrNotPow2 = fmt.Errorf("dsp: transform length must be a power of two")

func fft(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return ErrNotPow2
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wStep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	return nil
}

// FFTReal transforms a real signal and returns the full complex spectrum.
// len(x) must be a power of two.
func FFTReal(x []float64) ([]complex128, error) {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	if err := FFT(out); err != nil {
		return nil, err
	}
	return out, nil
}

// NaiveDFT computes the O(n²) forward DFT; it exists as a test oracle and
// as the reference definition of the transform the FFT must match.
func NaiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * complex(math.Cos(ang), math.Sin(ang))
		}
		out[k] = sum
	}
	return out
}

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// HannWindow returns the n-point periodic Hann window, the standard STFT
// analysis window.
func HannWindow(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n)))
	}
	return w
}
