package dsp

import (
	"fmt"
	"math"
)

// This file extends the audio front-end with the classic MFCC chain
// (pre-emphasis, DCT-II over log-Mel energies, delta features) — the
// "emerging complex data preparation algorithms" direction the paper
// argues will make data preparation even heavier (Sections I and VII).

// PreEmphasis applies the first-order high-pass filter
// y[n] = x[n] − α·x[n−1] in place (α typically 0.97). It boosts the
// high-frequency formants before the STFT.
func PreEmphasis(signal []float64, alpha float64) {
	if len(signal) == 0 {
		return
	}
	prev := signal[0]
	for i := 1; i < len(signal); i++ {
		cur := signal[i]
		signal[i] = cur - alpha*prev
		prev = cur
	}
}

// DCT2 computes the orthonormal type-II discrete cosine transform of x.
func DCT2(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	scale0 := math.Sqrt(1 / float64(n))
	scale := math.Sqrt(2 / float64(n))
	for k := 0; k < n; k++ {
		var sum float64
		for t := 0; t < n; t++ {
			sum += x[t] * math.Cos(math.Pi/float64(n)*(float64(t)+0.5)*float64(k))
		}
		if k == 0 {
			out[k] = sum * scale0
		} else {
			out[k] = sum * scale
		}
	}
	return out
}

// IDCT2 inverts the orthonormal DCT-II (i.e. applies DCT-III).
func IDCT2(c []float64) []float64 {
	n := len(c)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	scale0 := math.Sqrt(1 / float64(n))
	scale := math.Sqrt(2 / float64(n))
	for t := 0; t < n; t++ {
		sum := c[0] * scale0
		for k := 1; k < n; k++ {
			sum += c[k] * scale * math.Cos(math.Pi/float64(n)*(float64(t)+0.5)*float64(k))
		}
		out[t] = sum
	}
	return out
}

// MFCCConfig parameterizes the MFCC front-end.
type MFCCConfig struct {
	Mel MelConfig
	// NumCoeffs is the number of cepstral coefficients kept per frame
	// (≤ NumMels).
	NumCoeffs int
	// PreEmphasisAlpha is the pre-emphasis coefficient (0 disables).
	PreEmphasisAlpha float64
}

// DefaultMFCCConfig returns the conventional 13-coefficient front-end.
func DefaultMFCCConfig() MFCCConfig {
	return MFCCConfig{Mel: DefaultMelConfig(), NumCoeffs: 13, PreEmphasisAlpha: 0.97}
}

// MFCC computes Mel-frequency cepstral coefficients: pre-emphasis →
// log-Mel spectrogram → per-frame DCT-II → keep the first NumCoeffs.
// The result is frames × NumCoeffs.
func MFCC(signal []float64, cfg MFCCConfig) (*Spectrogram, error) {
	if cfg.NumCoeffs <= 0 || cfg.NumCoeffs > cfg.Mel.NumMels {
		return nil, fmt.Errorf("dsp: MFCC coefficients %d outside [1,%d]", cfg.NumCoeffs, cfg.Mel.NumMels)
	}
	work := append([]float64(nil), signal...)
	if cfg.PreEmphasisAlpha > 0 {
		PreEmphasis(work, cfg.PreEmphasisAlpha)
	}
	mel, err := LogMelSpectrogram(work, cfg.Mel)
	if err != nil {
		return nil, err
	}
	out := NewSpectrogram(mel.Frames, cfg.NumCoeffs)
	for t := 0; t < mel.Frames; t++ {
		row := mel.Data[t*mel.Bins : (t+1)*mel.Bins]
		c := DCT2(row)
		copy(out.Data[t*cfg.NumCoeffs:(t+1)*cfg.NumCoeffs], c[:cfg.NumCoeffs])
	}
	return out, nil
}

// Deltas computes first-order delta features with a ±width regression
// window: d[t] = Σ_{k=1..w} k·(x[t+k] − x[t−k]) / (2·Σ k²), with edge
// frames clamped. The result has the same shape as the input.
func Deltas(s *Spectrogram, width int) (*Spectrogram, error) {
	if width < 1 {
		return nil, fmt.Errorf("dsp: delta width %d must be ≥ 1", width)
	}
	out := NewSpectrogram(s.Frames, s.Bins)
	var denom float64
	for k := 1; k <= width; k++ {
		denom += float64(k * k)
	}
	denom *= 2
	clamp := func(t int) int {
		if t < 0 {
			return 0
		}
		if t >= s.Frames {
			return s.Frames - 1
		}
		return t
	}
	for t := 0; t < s.Frames; t++ {
		for f := 0; f < s.Bins; f++ {
			var num float64
			for k := 1; k <= width; k++ {
				num += float64(k) * (s.At(clamp(t+k), f) - s.At(clamp(t-k), f))
			}
			out.Set(t, f, num/denom)
		}
	}
	return out, nil
}
