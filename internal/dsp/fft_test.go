package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func complexClose(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := NaiveDFT(x)
		got := append([]complex128(nil), x...)
		if err := FFT(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range want {
			if !complexClose(got[i], want[i], 1e-9*float64(n)) {
				t.Fatalf("n=%d bin %d: fft=%v dft=%v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	x := make([]complex128, 6)
	if err := FFT(x); err != ErrNotPow2 {
		t.Errorf("FFT(len 6) err = %v, want ErrNotPow2", err)
	}
	if err := IFFT(x); err != ErrNotPow2 {
		t.Errorf("IFFT(len 6) err = %v, want ErrNotPow2", err)
	}
}

func TestFFTEmptyIsNoop(t *testing.T) {
	if err := FFT(nil); err != nil {
		t.Errorf("FFT(nil) = %v", err)
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	f := func(seed int64, sizeSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + sizeSel%9) // 2..512
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := append([]complex128(nil), x...)
		if err := FFT(y); err != nil {
			return false
		}
		if err := IFFT(y); err != nil {
			return false
		}
		for i := range x {
			if !complexClose(x[i], y[i], 1e-9*float64(n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 128
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		x := make([]complex128, n)
		y := make([]complex128, n)
		combo := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			combo[i] = a*x[i] + y[i]
		}
		fx := append([]complex128(nil), x...)
		fy := append([]complex128(nil), y...)
		fc := append([]complex128(nil), combo...)
		if FFT(fx) != nil || FFT(fy) != nil || FFT(fc) != nil {
			return false
		}
		for i := range fc {
			if !complexClose(fc[i], a*fx[i]+fy[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	// Sum |x|² == (1/n) Sum |X|².
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 256
		x := make([]complex128, n)
		var timeEnergy float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			timeEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		if err := FFT(x); err != nil {
			return false
		}
		var freqEnergy float64
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		freqEnergy /= n
		return math.Abs(timeEnergy-freqEnergy) <= 1e-8*timeEnergy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFFTImpulseIsFlat(t *testing.T) {
	x := make([]complex128, 16)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if !complexClose(v, 1, 1e-12) {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTRealSinusoidPeaksAtItsBin(t *testing.T) {
	const n = 512
	const bin = 37
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * bin * float64(i) / n)
	}
	spec, err := FFTReal(x)
	if err != nil {
		t.Fatal(err)
	}
	peak := 0
	for i := 1; i < n/2; i++ {
		if cmplx.Abs(spec[i]) > cmplx.Abs(spec[peak]) {
			peak = i
		}
	}
	if peak != bin {
		t.Errorf("spectral peak at bin %d, want %d", peak, bin)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 400: 512, 512: 512, 513: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestHannWindowProperties(t *testing.T) {
	w := HannWindow(400)
	if w[0] != 0 {
		t.Errorf("w[0] = %v, want 0", w[0])
	}
	// Periodic Hann peaks at n/2 with value 1.
	if math.Abs(w[200]-1) > 1e-12 {
		t.Errorf("w[n/2] = %v, want 1", w[200])
	}
	// Symmetry of the periodic window: w[i] == w[n-i].
	for i := 1; i < 200; i++ {
		if math.Abs(w[i]-w[400-i]) > 1e-12 {
			t.Fatalf("asymmetric at %d: %v vs %v", i, w[i], w[400-i])
		}
	}
	if len(HannWindow(1)) != 1 || HannWindow(1)[0] != 1 {
		t.Error("HannWindow(1) should be [1]")
	}
}
