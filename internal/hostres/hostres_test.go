package hostres

import (
	"math"
	"testing"
	"testing/quick"

	"trainbox/internal/units"
)

func TestDGX2Reference(t *testing.T) {
	h := DGX2()
	if h.Cores != 48 {
		t.Errorf("DGX-2 cores = %d, want 48 (Section III-B)", h.Cores)
	}
	if h.MemoryBandwidth != 239*units.GBps {
		t.Errorf("DGX-2 mem BW = %v, want 239 GB/s (Section III-C)", h.MemoryBandwidth)
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	if err := (HostSpec{Name: "x", Cores: 0, MemoryBandwidth: units.GBps}).Validate(); err == nil {
		t.Error("zero cores accepted")
	}
	if err := (HostSpec{Name: "x", Cores: 4, MemoryBandwidth: 0}).Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestMaxRateTakesBindingConstraint(t *testing.T) {
	h := HostSpec{Name: "x", Cores: 10, MemoryBandwidth: 100 * units.GBps}
	// CPU-bound: 10 cores / 1 ms per sample = 10,000/s; memory allows 1e5/s.
	d := Demand{CPUSeconds: 1e-3, MemoryBytes: units.Bytes(1e6)}
	if got := h.MaxRate(d); math.Abs(float64(got)-10000) > 1e-6 {
		t.Errorf("CPU-bound rate = %v, want 10000", got)
	}
	// Memory-bound.
	d = Demand{CPUSeconds: 1e-6, MemoryBytes: units.Bytes(1e8)}
	if got := h.MaxRate(d); math.Abs(float64(got)-1000) > 1e-6 {
		t.Errorf("memory-bound rate = %v, want 1000", got)
	}
	// No demand: unconstrained.
	if got := h.MaxRate(Demand{}); float64(got) < 1e29 {
		t.Errorf("zero demand rate = %v, want unbounded", got)
	}
}

func TestDemandAddScale(t *testing.T) {
	a := Demand{CPUSeconds: 1, MemoryBytes: 100}
	b := Demand{CPUSeconds: 2, MemoryBytes: 300}
	sum := a.Add(b)
	if sum.CPUSeconds != 3 || sum.MemoryBytes != 400 {
		t.Errorf("Add = %+v", sum)
	}
	sc := a.Scale(2.5)
	if sc.CPUSeconds != 2.5 || sc.MemoryBytes != 250 {
		t.Errorf("Scale = %+v", sc)
	}
}

func TestRequiredResourcesInvertMaxRate(t *testing.T) {
	f := func(cpuMs, memKB float64) bool {
		cpu := math.Mod(math.Abs(cpuMs), 10) + 0.01 // 0.01..10 ms
		mem := math.Mod(math.Abs(memKB), 1e4) + 1   // 1..10000 KB
		d := Demand{CPUSeconds: cpu * 1e-3, MemoryBytes: units.Bytes(mem * 1e3)}
		h := DGX2()
		rate := h.MaxRate(d)
		cores := h.CoresRequired(rate, d)
		bw := h.MemoryBWRequired(rate, d)
		// At the max rate, at least one resource is fully used and none
		// is overcommitted.
		overC := cores > float64(h.Cores)*(1+1e-9)
		overM := float64(bw) > float64(h.MemoryBandwidth)*(1+1e-9)
		atCap := cores >= float64(h.Cores)*(1-1e-9) || float64(bw) >= float64(h.MemoryBandwidth)*(1-1e-9)
		return !overC && !overM && atCap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCoresRequiredScalesLinearly(t *testing.T) {
	h := DGX2()
	d := Demand{CPUSeconds: 2e-3}
	if got := h.CoresRequired(1000, d); math.Abs(got-2) > 1e-9 {
		t.Errorf("CoresRequired = %v, want 2", got)
	}
	if got := h.MemoryBWRequired(1000, Demand{MemoryBytes: units.MB}); math.Abs(float64(got)-float64(1000*units.MB)) > 1 {
		t.Errorf("MemoryBWRequired = %v", got)
	}
}
