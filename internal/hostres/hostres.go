// Package hostres models the host-side resources the paper's bottleneck
// analysis tracks: CPU cores and DRAM bandwidth (Section III-C). The
// PCIe root complex, the third host resource, lives in internal/pcie as
// part of the tree.
//
// The reference machine throughout the paper is NVIDIA DGX-2: 48
// physical Xeon cores and 239 GB/s of memory bandwidth; Figure 10
// normalizes every requirement to that machine.
package hostres

import (
	"fmt"

	"trainbox/internal/units"
)

// HostSpec describes a host's CPU and memory resources.
type HostSpec struct {
	Name string
	// Cores is the number of physical CPU cores.
	Cores int
	// MemoryBandwidth is the aggregate DRAM bandwidth.
	MemoryBandwidth units.BytesPerSec
}

// DGX2 is the paper's reference host: two-socket Xeon with 48 physical
// cores and 239 GB/s of memory bandwidth (Section III-B/III-C).
func DGX2() HostSpec {
	return HostSpec{Name: "dgx-2", Cores: 48, MemoryBandwidth: 239 * units.GBps}
}

// Validate reports the first spec error, or nil.
func (h HostSpec) Validate() error {
	if h.Cores <= 0 {
		return fmt.Errorf("hostres: %s has %d cores", h.Name, h.Cores)
	}
	if h.MemoryBandwidth <= 0 {
		return fmt.Errorf("hostres: %s has non-positive memory bandwidth", h.Name)
	}
	return nil
}

// Demand is a per-sample host-resource demand: CPU core-seconds and DRAM
// bytes consumed to prepare one sample.
type Demand struct {
	CPUSeconds  float64
	MemoryBytes units.Bytes
}

// Add returns the component-wise sum of two demands.
func (d Demand) Add(o Demand) Demand {
	return Demand{CPUSeconds: d.CPUSeconds + o.CPUSeconds, MemoryBytes: d.MemoryBytes + o.MemoryBytes}
}

// Scale returns the demand multiplied by k.
func (d Demand) Scale(k float64) Demand {
	return Demand{CPUSeconds: d.CPUSeconds * k, MemoryBytes: d.MemoryBytes * units.Bytes(k)}
}

// MaxRate returns the highest sample rate the host sustains under the
// per-sample demand: min(cores/CPUSeconds, memBW/MemoryBytes). A
// zero-demand component is unconstraining.
func (h HostSpec) MaxRate(d Demand) units.SamplesPerSec {
	rate := 1e30
	if d.CPUSeconds > 0 {
		if r := float64(h.Cores) / d.CPUSeconds; r < rate {
			rate = r
		}
	}
	if d.MemoryBytes > 0 {
		if r := float64(h.MemoryBandwidth) / float64(d.MemoryBytes); r < rate {
			rate = r
		}
	}
	return units.SamplesPerSec(rate)
}

// CoresRequired returns how many cores sustain the target sample rate
// under the per-sample CPU demand (fractional; callers round up for
// provisioning).
func (h HostSpec) CoresRequired(rate units.SamplesPerSec, d Demand) float64 {
	return float64(rate) * d.CPUSeconds
}

// MemoryBWRequired returns the DRAM bandwidth that sustains the target
// sample rate under the per-sample memory demand.
func (h HostSpec) MemoryBWRequired(rate units.SamplesPerSec, d Demand) units.BytesPerSec {
	return units.BytesPerSec(float64(rate) * float64(d.MemoryBytes))
}
