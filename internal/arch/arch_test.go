package arch

import (
	"testing"

	"trainbox/internal/pcie"
)

func TestKindPredicates(t *testing.T) {
	cases := []struct {
		k                         Kind
		acc, p2p, clustered, pool bool
	}{
		{Baseline, false, false, false, false},
		{BaselineAcc, true, false, false, false},
		{BaselineAccP2P, true, true, false, false},
		{BaselineAccP2PGen4, true, true, false, false},
		{TrainBoxNoPool, true, true, true, false},
		{TrainBox, true, true, true, true},
	}
	for _, c := range cases {
		if c.k.UsesPrepAccelerators() != c.acc || c.k.UsesP2P() != c.p2p ||
			c.k.Clustered() != c.clustered || c.k.HasPool() != c.pool {
			t.Errorf("%v predicates wrong", c.k)
		}
	}
	if BaselineAccP2PGen4.Generation() != pcie.Gen4 {
		t.Error("Gen4 variant should use Gen4")
	}
	if TrainBox.Generation() != pcie.Gen3 {
		t.Error("TrainBox should stay on commodity Gen3")
	}
	if len(Kinds()) != 6 {
		t.Error("Kinds() incomplete")
	}
	seen := map[string]bool{}
	for _, k := range Kinds() {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d bad string %q", k, s)
		}
		seen[s] = true
	}
}

func TestBuildBaselineShape(t *testing.T) {
	sys, err := Build(Config{Kind: Baseline, NumAccels: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Accels) != 256 {
		t.Errorf("accels = %d", len(sys.Accels))
	}
	if len(sys.SSDs) != 64 { // 2 per 8 accels
		t.Errorf("ssds = %d, want 64", len(sys.SSDs))
	}
	if len(sys.PrepAccels) != 0 {
		t.Error("baseline should have no prep accelerators")
	}
	if len(sys.Boxes) != 0 {
		t.Error("baseline should not be clustered")
	}
	// Every SSD→accel route must cross the root complex: device-type
	// grouping forces host-mediated paths.
	if !sys.Topo.RouteCrossesRoot(sys.SSDs[0], sys.Accels[0]) {
		t.Error("baseline SSD→accel route avoids the root complex")
	}
	if sys.Config.Prep != PrepCPU {
		t.Error("baseline prep device should be CPU")
	}
}

func TestBuildBaselineAccShape(t *testing.T) {
	sys, err := Build(Config{Kind: BaselineAcc, NumAccels: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.PrepAccels) != 64 { // 1 per 4 accels
		t.Errorf("prep accels = %d, want 64", len(sys.PrepAccels))
	}
	// FPGAs live in their own boxes: SSD→FPGA crosses the root.
	if !sys.Topo.RouteCrossesRoot(sys.SSDs[0], sys.PrepAccels[0]) {
		t.Error("B+Acc SSD→FPGA route should cross the root complex")
	}
	if sys.Config.Prep != PrepFPGA {
		t.Error("default prep device should be FPGA")
	}
}

func TestBuildTrainBoxShape(t *testing.T) {
	sys, err := Build(Config{Kind: TrainBox, NumAccels: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Boxes) != 32 {
		t.Fatalf("boxes = %d, want 32", len(sys.Boxes))
	}
	for i, g := range sys.Boxes {
		if len(g.Accels) != 8 || len(g.FPGAs) != 2 || len(g.SSDs) != 2 {
			t.Fatalf("box %d has %d/%d/%d accels/fpgas/ssds, want 8/2/2",
				i, len(g.Accels), len(g.FPGAs), len(g.SSDs))
		}
		// The clustering property (Section IV-D): in-box datapaths never
		// touch the root complex.
		for _, ssd := range g.SSDs {
			for _, fp := range g.FPGAs {
				if sys.Topo.RouteCrossesRoot(ssd, fp) {
					t.Fatal("in-box SSD→FPGA route crosses the root complex")
				}
			}
		}
		for _, fp := range g.FPGAs {
			for _, acc := range g.Accels {
				if sys.Topo.RouteCrossesRoot(fp, acc) {
					t.Fatal("in-box FPGA→accel route crosses the root complex")
				}
			}
		}
	}
	if sys.PoolNet == nil {
		t.Fatal("TrainBox should have a prep-pool network")
	}
	if sys.PoolNet.Ports() < len(sys.PrepAccels)+384 {
		t.Errorf("pool ports = %d, want in-box FPGAs + default pool size", sys.PoolNet.Ports())
	}
	if sys.Config.PoolFPGAs != 384 {
		t.Errorf("default pool FPGAs = %d, want 1.5×NumAccels", sys.Config.PoolFPGAs)
	}
}

func TestBuildTrainBoxNoPool(t *testing.T) {
	sys, err := Build(Config{Kind: TrainBoxNoPool, NumAccels: 16})
	if err != nil {
		t.Fatal(err)
	}
	if sys.PoolNet != nil {
		t.Error("no-pool variant should have no pool network")
	}
	if sys.Config.PoolFPGAs != 0 {
		t.Error("no-pool variant should have zero pool FPGAs")
	}
}

func TestBuildPartialBox(t *testing.T) {
	sys, err := Build(Config{Kind: TrainBox, NumAccels: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Accels) != 3 {
		t.Errorf("accels = %d", len(sys.Accels))
	}
	if len(sys.Boxes) != 1 {
		t.Errorf("boxes = %d", len(sys.Boxes))
	}
	// A partial box still gets an FPGA and SSDs.
	if len(sys.Boxes[0].FPGAs) < 1 || len(sys.Boxes[0].SSDs) != SSDsPerTrainBox {
		t.Errorf("partial box: %d fpgas %d ssds", len(sys.Boxes[0].FPGAs), len(sys.Boxes[0].SSDs))
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	if _, err := Build(Config{Kind: Baseline, NumAccels: 0}); err == nil {
		t.Error("zero accels accepted")
	}
}

func TestBoxOf(t *testing.T) {
	sys, err := Build(Config{Kind: TrainBox, NumAccels: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range sys.Boxes {
		for _, a := range g.Accels {
			if sys.BoxOf(a) != i {
				t.Fatalf("BoxOf(%v) = %d, want %d", a, sys.BoxOf(a), i)
			}
		}
	}
	flat, _ := Build(Config{Kind: Baseline, NumAccels: 8})
	if flat.BoxOf(flat.Accels[0]) != -1 {
		t.Error("flat system BoxOf should be -1")
	}
}

func TestRCCapacityScalesWithGeneration(t *testing.T) {
	if RCCapacity(pcie.Gen4) != 2*RCCapacity(pcie.Gen3) {
		t.Error("Gen4 RC capacity should double Gen3")
	}
}

func TestGPUPrepBuild(t *testing.T) {
	sys, err := Build(Config{Kind: BaselineAcc, NumAccels: 256, Prep: PrepGPU})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.PrepAccels) != 64 { // paper's 1:4 GPU ratio
		t.Errorf("GPUs = %d, want 64", len(sys.PrepAccels))
	}
	// GPUs sit on standard x16 links, not the FPGA dual-link attachment.
	bw := sys.Topo.LinkOf(sys.PrepAccels[0]).Bandwidth
	if bw != pcie.Gen3.LinkBandwidth() {
		t.Errorf("GPU link = %v, want Gen3 x16", bw)
	}
}

func TestPrepDeviceStrings(t *testing.T) {
	for _, d := range []PrepDevice{PrepCPU, PrepFPGA, PrepGPU, PrepXeonPhi} {
		if d.String() == "" {
			t.Errorf("device %d has empty string", d)
		}
	}
}
