// Package arch constructs the server architectures the paper evaluates
// (Figures 12–15, 18) as concrete PCIe topologies plus the metadata the
// system model needs to route data-preparation flows through them:
//
//	Baseline            — SSD boxes + accelerator boxes; prep on host CPUs,
//	                      all data staged through host DRAM (Figure 12).
//	Baseline+Acc        — adds prep boxes of PCIe FPGAs; data still staged
//	                      through host DRAM (Figure 13).
//	Baseline+Acc+P2P    — direct SSD→FPGA→accelerator transfers bypassing
//	                      host DRAM, but devices remain grouped by type so
//	                      every transfer still crosses the root complex
//	                      (Figure 14).
//	…+Gen4              — same datapath on PCIe Gen4 (the bandwidth-only
//	                      counterfactual of Figure 19).
//	TrainBox            — train boxes co-locating SSDs, FPGAs and
//	                      accelerators under one switch, plus the Ethernet
//	                      prep-pool (Figures 15, 18).
//
// Box geometry follows Section V-D: eight accelerators per box, four
// accelerators and one FPGA per PEX8796-class switch, two NVMe SSDs per
// train box.
package arch

import (
	"fmt"

	"trainbox/internal/eth"
	"trainbox/internal/hostres"
	"trainbox/internal/pcie"
	"trainbox/internal/storage"
	"trainbox/internal/units"
)

// Kind selects the server architecture.
type Kind int

// The evaluated architectures, in Figure 19's order.
const (
	Baseline Kind = iota
	BaselineAcc
	BaselineAccP2P
	BaselineAccP2PGen4
	TrainBoxNoPool
	TrainBox
)

func (k Kind) String() string {
	switch k {
	case Baseline:
		return "Baseline"
	case BaselineAcc:
		return "B+Acc"
	case BaselineAccP2P:
		return "B+Acc+P2P"
	case BaselineAccP2PGen4:
		return "B+Acc+P2P+Gen4"
	case TrainBoxNoPool:
		return "TrainBox w/o prep-pool"
	case TrainBox:
		return "TrainBox"
	}
	return fmt.Sprintf("arch(%d)", int(k))
}

// Kinds lists all architectures in evaluation order.
func Kinds() []Kind {
	return []Kind{Baseline, BaselineAcc, BaselineAccP2P, BaselineAccP2PGen4, TrainBoxNoPool, TrainBox}
}

// UsesPrepAccelerators reports whether preparation is offloaded from the
// host CPUs.
func (k Kind) UsesPrepAccelerators() bool { return k != Baseline }

// UsesP2P reports whether the data path bypasses host DRAM.
func (k Kind) UsesP2P() bool {
	return k == BaselineAccP2P || k == BaselineAccP2PGen4 || k == TrainBoxNoPool || k == TrainBox
}

// Clustered reports whether devices are grouped into train boxes.
func (k Kind) Clustered() bool { return k == TrainBoxNoPool || k == TrainBox }

// HasPool reports whether the Ethernet prep-pool is available.
func (k Kind) HasPool() bool { return k == TrainBox }

// Generation returns the PCIe generation of the architecture.
func (k Kind) Generation() pcie.Generation {
	if k == BaselineAccP2PGen4 {
		return pcie.Gen4
	}
	return pcie.Gen3
}

// PrepDevice selects what executes data preparation in the offloaded
// architectures (Section V-B's device comparison, Figure 21).
type PrepDevice int

// Preparation device options.
const (
	PrepCPU PrepDevice = iota // host cores (baseline only)
	PrepFPGA
	PrepGPU
	PrepXeonPhi
)

func (d PrepDevice) String() string {
	switch d {
	case PrepCPU:
		return "cpu"
	case PrepFPGA:
		return "fpga"
	case PrepGPU:
		return "gpu"
	case PrepXeonPhi:
		return "xeon-phi"
	}
	return fmt.Sprintf("prep(%d)", int(d))
}

// Box geometry constants (Section V-D).
const (
	AccelsPerBox     = 8 // DGX-2 / Supermicro style
	AccelsPerSwitch  = 4 // PEX8796: five downlinks, one uplink
	FPGAsPerTrainBox = 2 // one per accelerator switch
	SSDsPerTrainBox  = 2
	SSDsPerSSDBox    = 4 // baseline SSD boxes; same SSD:accel density
	FPGAsPerPrepBox  = 8 // baseline+Acc prep boxes
)

// Link bandwidth overrides.
var (
	// SSDLinkBW is the NVMe x4 attachment.
	SSDLinkBW = 4 * units.GBps
	// PrepAccelLinkBW is the FPGA attachment. The paper's VCU1525-class
	// boards expose dual PCIe connectors; a single Gen3 x16 link cannot
	// physically carry RNN-S's prepared-tensor stream (≈29 GB/s for four
	// accelerators), so the model uses the dual-link 32 GB/s attachment.
	// This substitution is recorded in DESIGN.md.
	PrepAccelLinkBW = 32 * units.GBps
	// PoolEthernetBW is each FPGA's prep-pool attachment: dual 100 Gb/s
	// (Section V-D: "dual 100 Gbps").
	PoolEthernetBW = 25 * units.GBps
)

// RCCapacity returns the root complex's aggregate switching capacity
// (both directions summed) for a generation. The Gen3 value corresponds
// to a DGX-2-class host with twelve x16 root ports and is also the
// normalization base of Figure 10c.
func RCCapacity(gen pcie.Generation) units.BytesPerSec {
	return 12 * gen.LinkBandwidth()
}

// Config describes one system to build.
type Config struct {
	Kind      Kind
	NumAccels int
	// Prep selects the preparation device for offloaded architectures;
	// zero value means FPGA (PrepCPU is implied for Baseline).
	Prep PrepDevice
	// Host is the host spec; zero value means DGX-2.
	Host hostres.HostSpec
	// SSD is the SSD device spec; zero value means DefaultSSDSpec.
	SSD storage.SSDSpec
	// PoolFPGAs is the number of prep-pool devices available to this job
	// (TrainBox only); zero means a default of NumAccels/2.
	PoolFPGAs int
	// FPGAsPerBox overrides the number of preparation accelerators per
	// train box (clustered kinds only); zero means FPGAsPerTrainBox.
	// It exists for the provisioning ablation and the failure study:
	// how much in-box prep capacity a deployment has.
	FPGAsPerBox int
	// SSDsPerBox overrides the number of SSDs per train box (clustered
	// kinds only); zero means SSDsPerTrainBox. Used by the
	// failure-injection study.
	SSDsPerBox int
}

// normalize fills defaults.
func (c Config) normalize() (Config, error) {
	if c.NumAccels <= 0 {
		return c, fmt.Errorf("arch: need at least one accelerator, got %d", c.NumAccels)
	}
	if c.Host.Cores == 0 {
		c.Host = hostres.DGX2()
	}
	if err := c.Host.Validate(); err != nil {
		return c, err
	}
	if c.SSD.ReadBandwidth == 0 {
		c.SSD = storage.DefaultSSDSpec()
	}
	if c.Kind == Baseline {
		c.Prep = PrepCPU
	} else if c.Prep == PrepCPU {
		c.Prep = PrepFPGA
	}
	if c.Kind == TrainBox && c.PoolFPGAs == 0 {
		// Default pool sized the way the train initializer would: large
		// enough that the most prep-hungry Table I workload (RNN-S) can
		// reach the accelerator target (Section V-A sizes the pool from
		// required throughput, so an undersized pool is a config choice,
		// not a default).
		c.PoolFPGAs = c.NumAccels + c.NumAccels/2
	}
	if c.Kind != TrainBox {
		c.PoolFPGAs = 0
	}
	if c.FPGAsPerBox < 0 {
		return c, fmt.Errorf("arch: negative FPGAs per box %d", c.FPGAsPerBox)
	}
	if c.FPGAsPerBox == 0 {
		c.FPGAsPerBox = FPGAsPerTrainBox
	}
	if c.SSDsPerBox < 0 {
		return c, fmt.Errorf("arch: negative SSDs per box %d", c.SSDsPerBox)
	}
	if c.SSDsPerBox == 0 {
		c.SSDsPerBox = SSDsPerTrainBox
	}
	return c, nil
}

// TrainBoxGroup is one train box's device membership (clustered kinds).
type TrainBoxGroup struct {
	Switch pcie.NodeID
	Accels []pcie.NodeID
	FPGAs  []pcie.NodeID
	SSDs   []pcie.NodeID
}

// System is a built architecture: the PCIe topology plus device roles.
type System struct {
	Config Config
	Topo   *pcie.Topology
	// Root is the root complex; in this model the host CPUs/DRAM sit
	// behind it, so host-staged transfers terminate here.
	Root pcie.NodeID
	// Device roles.
	Accels []pcie.NodeID
	SSDs   []pcie.NodeID
	// PrepAccels is empty for Baseline (CPU prep).
	PrepAccels []pcie.NodeID
	// Boxes is non-empty only for clustered kinds.
	Boxes []TrainBoxGroup
	// RCCap is the root-complex aggregate capacity.
	RCCap units.BytesPerSec
	// PoolNet is the prep-pool Ethernet network (TrainBox only).
	PoolNet *eth.Network
}

// Build constructs the system for a configuration.
func Build(cfg Config) (*System, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if cfg.Kind.Clustered() {
		return buildClustered(cfg)
	}
	return buildFlat(cfg)
}

// buildFlat constructs Baseline and the B+Acc variants: device-type
// boxes hanging off the root complex (Figure 7).
func buildFlat(cfg Config) (*System, error) {
	gen := cfg.Kind.Generation()
	b := pcie.NewBuilder(gen)
	root := b.Root("rc")
	sys := &System{Config: cfg, Root: root, RCCap: RCCapacity(gen)}

	// Accelerator boxes: a box switch with two 4-accel switches.
	numAccBoxes := (cfg.NumAccels + AccelsPerBox - 1) / AccelsPerBox
	remaining := cfg.NumAccels
	for bx := 0; bx < numAccBoxes; bx++ {
		box := b.Switch(root, fmt.Sprintf("accbox%d", bx))
		for sw := 0; sw < 2 && remaining > 0; sw++ {
			sub := b.Switch(box, fmt.Sprintf("accbox%d/sw%d", bx, sw))
			for i := 0; i < AccelsPerSwitch && remaining > 0; i++ {
				sys.Accels = append(sys.Accels, b.Device(sub, pcie.KindNNAccel,
					fmt.Sprintf("acc%d", len(sys.Accels))))
				remaining--
			}
		}
	}

	// SSD boxes: same SSD-per-accelerator density as train boxes.
	numSSDs := maxInt(SSDsPerTrainBox, cfg.NumAccels*SSDsPerTrainBox/AccelsPerBox)
	numSSDBoxes := (numSSDs + SSDsPerSSDBox - 1) / SSDsPerSSDBox
	left := numSSDs
	for bx := 0; bx < numSSDBoxes; bx++ {
		box := b.Switch(root, fmt.Sprintf("ssdbox%d", bx))
		for i := 0; i < SSDsPerSSDBox && left > 0; i++ {
			sys.SSDs = append(sys.SSDs, b.DeviceBW(box, pcie.KindSSD,
				fmt.Sprintf("ssd%d", len(sys.SSDs)), SSDLinkBW))
			left--
		}
	}

	// Prep boxes for the offloaded variants.
	if cfg.Kind.UsesPrepAccelerators() {
		numPrep := prepDeviceCount(cfg.Prep, cfg.NumAccels)
		numPrepBoxes := (numPrep + FPGAsPerPrepBox - 1) / FPGAsPerPrepBox
		leftP := numPrep
		linkBW := PrepAccelLinkBW
		if cfg.Prep != PrepFPGA {
			linkBW = gen.LinkBandwidth() // GPUs/Phi on a standard x16
		}
		for bx := 0; bx < numPrepBoxes; bx++ {
			box := b.Switch(root, fmt.Sprintf("prepbox%d", bx))
			for i := 0; i < FPGAsPerPrepBox && leftP > 0; i++ {
				sys.PrepAccels = append(sys.PrepAccels, b.DeviceBW(box, pcie.KindPrepAccel,
					fmt.Sprintf("prep%d", len(sys.PrepAccels)), linkBW))
				leftP--
			}
		}
	}

	sys.Topo = b.Build()
	if err := sys.Topo.Validate(); err != nil {
		return nil, err
	}
	return sys, nil
}

// buildClustered constructs TrainBox: train boxes each holding SSDs,
// FPGAs, and accelerators (Figure 18), plus the Ethernet prep-pool.
func buildClustered(cfg Config) (*System, error) {
	gen := cfg.Kind.Generation()
	b := pcie.NewBuilder(gen)
	root := b.Root("rc")
	sys := &System{Config: cfg, Root: root, RCCap: RCCapacity(gen)}

	numBoxes := (cfg.NumAccels + AccelsPerBox - 1) / AccelsPerBox
	remaining := cfg.NumAccels
	for bx := 0; bx < numBoxes; bx++ {
		box := b.Switch(root, fmt.Sprintf("trainbox%d", bx))
		group := TrainBoxGroup{Switch: box}
		var subs []pcie.NodeID
		for sw := 0; sw < 2 && remaining > 0; sw++ {
			sub := b.Switch(box, fmt.Sprintf("trainbox%d/sw%d", bx, sw))
			subs = append(subs, sub)
			for i := 0; i < AccelsPerSwitch && remaining > 0; i++ {
				id := b.Device(sub, pcie.KindNNAccel, fmt.Sprintf("acc%d", len(sys.Accels)))
				sys.Accels = append(sys.Accels, id)
				group.Accels = append(group.Accels, id)
				remaining--
			}
		}
		// Preparation accelerators spread round-robin across the box's
		// accelerator switches (default one per switch, Figure 18).
		for i := 0; i < cfg.FPGAsPerBox; i++ {
			fp := b.DeviceBW(subs[i%len(subs)], pcie.KindPrepAccel,
				fmt.Sprintf("fpga%d", len(sys.PrepAccels)), PrepAccelLinkBW)
			sys.PrepAccels = append(sys.PrepAccels, fp)
			group.FPGAs = append(group.FPGAs, fp)
		}
		for i := 0; i < cfg.SSDsPerBox; i++ {
			id := b.DeviceBW(box, pcie.KindSSD, fmt.Sprintf("ssd%d", len(sys.SSDs)), SSDLinkBW)
			sys.SSDs = append(sys.SSDs, id)
			group.SSDs = append(group.SSDs, id)
		}
		sys.Boxes = append(sys.Boxes, group)
	}

	sys.Topo = b.Build()
	if err := sys.Topo.Validate(); err != nil {
		return nil, err
	}

	if cfg.Kind.HasPool() {
		ports := len(sys.PrepAccels) + cfg.PoolFPGAs
		net, err := eth.NewNetwork(eth.LinkSpec{Bandwidth: PoolEthernetBW}, eth.SwitchSpec{Ports: ports})
		if err != nil {
			return nil, err
		}
		sys.PoolNet = net
	}
	return sys, nil
}

// prepDeviceCount returns how many preparation devices an offloaded
// architecture deploys for n accelerators.
// Every device type deploys at the paper's 1:4 device:accelerator ratio
// (FPGAs per Figure 18's geometry, GPUs per Figure 21's "1:4 ratio").
func prepDeviceCount(_ PrepDevice, n int) int {
	c := (n + AccelsPerSwitch - 1) / AccelsPerSwitch
	if c < 1 {
		c = 1
	}
	return c
}

// BoxOf returns the train box index containing the accelerator, or -1
// for flat systems.
func (s *System) BoxOf(accel pcie.NodeID) int {
	for i, g := range s.Boxes {
		for _, a := range g.Accels {
			if a == accel {
				return i
			}
		}
	}
	return -1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
