package memframe

import (
	"sync"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, want int
	}{
		{1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << maxClassBits, numClasses - 1},
		{1<<maxClassBits + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestGetPutReuses(t *testing.T) {
	p := NewPool[float32]()
	a := p.Get(100)
	if len(a) != 100 || cap(a) != 128 {
		t.Fatalf("Get(100): len %d cap %d, want 100/128", len(a), cap(a))
	}
	a[0] = 42
	p.Put(a)
	// A differently-sized request from the same class must reuse the
	// recycled buffer — and see its stale contents.
	b := p.Get(70)
	if len(b) != 70 {
		t.Fatalf("Get(70): len %d", len(b))
	}
	if b[0] != 42 {
		t.Error("recycled buffer did not carry stale contents (not reused?)")
	}
	st := p.Stats()
	if st.Gets != 2 || st.News != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v, want Gets 2 News 1 Puts 1", st)
	}
}

func TestGetZeroAndOversized(t *testing.T) {
	p := NewPool[byte]()
	if s := p.Get(0); s != nil {
		t.Error("Get(0) should return nil")
	}
	huge := p.Get(1<<maxClassBits + 1)
	if len(huge) != 1<<maxClassBits+1 {
		t.Fatalf("oversized Get len %d", len(huge))
	}
	p.Put(huge)
	st := p.Stats()
	if st.Drops == 0 {
		t.Error("oversized Put should be dropped")
	}
}

func TestPutSmallDropped(t *testing.T) {
	p := NewPool[byte]()
	p.Put(make([]byte, 8))
	if st := p.Stats(); st.Drops != 1 {
		t.Errorf("tiny Put not dropped: %+v", st)
	}
	if s := p.Get(8); len(s) != 8 || cap(s) != 64 {
		t.Errorf("Get(8) = len %d cap %d, want fresh 8/64", len(s), cap(s))
	}
}

func TestPutFilesUnderCoveringClass(t *testing.T) {
	p := NewPool[byte]()
	// Capacity 100 covers class 0 (64) but not class 1 (128): it must be
	// filed under class 0 so a Get(128) never receives it.
	p.Put(make([]byte, 100))
	b := p.Get(128)
	if cap(b) < 128 {
		t.Fatalf("Get(128) got cap %d", cap(b))
	}
	a := p.Get(64)
	if cap(a) != 100 {
		t.Errorf("Get(64) should reuse the cap-100 buffer, got cap %d", cap(a))
	}
}

func TestKeepBound(t *testing.T) {
	p := NewPool[byte]()
	for i := 0; i < defaultKeep+5; i++ {
		p.Put(make([]byte, 64))
	}
	st := p.Stats()
	if st.Drops != 5 {
		t.Errorf("drops = %d, want 5 (keep bound %d)", st.Drops, defaultKeep)
	}
}

func TestSteadyStateAllocFree(t *testing.T) {
	p := NewPool[float64]()
	p.Put(p.Get(1000))
	allocs := testing.AllocsPerRun(100, func() {
		s := p.Get(1000)
		p.Put(s)
	})
	if allocs != 0 {
		t.Errorf("steady-state Get/Put allocates %.1f per run, want 0", allocs)
	}
}

func TestConcurrentUse(t *testing.T) {
	p := NewPool[int32]()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := p.Get(64 + g*100)
				for j := range s {
					s[j] = int32(g)
				}
				for _, v := range s {
					if v != int32(g) {
						t.Errorf("buffer shared between goroutines")
						return
					}
				}
				p.Put(s)
			}
		}(g)
	}
	wg.Wait()
	st := p.Stats()
	if st.Gets != 8*200 {
		t.Errorf("gets = %d, want %d", st.Gets, 8*200)
	}
	if st.News > st.Gets/4 {
		t.Errorf("news = %d of %d gets — pool not recycling under concurrency", st.News, st.Gets)
	}
}

func TestSetAggregatesStats(t *testing.T) {
	s := NewSet()
	s.F32.Put(s.F32.Get(100))
	s.F64.Put(s.F64.Get(100))
	s.U8.Put(s.U8.Get(100))
	st := s.Stats()
	if st.Gets != 3 || st.Puts != 3 || st.News != 3 {
		t.Errorf("aggregate stats = %+v", st)
	}
}
