// Package memframe is the arena-style scratch layer of the
// zero-allocation sample path: size-classed, pool-backed slice buffers
// with explicit ownership rules and reuse counters.
//
// The paper's system model rests on calibrated per-sample kernel costs
// (decode, augment, cast — Tables II and III); on the host those costs
// are dominated not by arithmetic but by per-sample allocation and
// copying (Yang & Cong; FFCV makes removing exactly this overhead worth
// integer-factor speedups). memframe gives every layer of the
// decode→augment→cast path one way to recycle a bounded working set
// instead of reallocating it per sample.
//
// # Ownership rules
//
//   - Get transfers ownership of the returned slice to the caller.
//     The contents are STALE — whatever the previous owner left there.
//     Callers must fully overwrite every element they read.
//   - Put transfers ownership back. The caller must drop every
//     reference first: touching a slice after Put is a data race with
//     the next Get. Put is only legal for the current owner; putting a
//     slice twice, or one that something else still reads, corrupts the
//     next consumer.
//   - A Pool is safe for concurrent use; the slices it hands out are
//     not shared — exactly one goroutine owns a buffer between Get and
//     Put.
//   - Dropping a buffer instead of Put is always safe (the GC takes
//     it); it just costs a future allocation.
//
// DESIGN.md §12 documents how the data-preparation layers apply these
// rules end to end.
package memframe

import "sync"

const (
	// minClassBits is the smallest size class: 1<<6 = 64 elements.
	minClassBits = 6
	// maxClassBits is the largest size class: 1<<24 = 16Mi elements.
	// Larger requests are served by direct allocation and never pooled.
	maxClassBits = 24
	numClasses   = maxClassBits - minClassBits + 1

	// defaultKeep bounds how many free buffers each class retains; the
	// bound is what keeps a steady-state working set from growing into a
	// leak when producers outpace consumers.
	defaultKeep = 32
)

// Stats are cumulative pool counters. Gets − News is the number of
// allocations the pool avoided; News growing as fast as Gets means
// nothing is being recycled.
type Stats struct {
	// Gets counts buffers handed out.
	Gets int64
	// Puts counts buffers returned.
	Puts int64
	// News counts Gets that had to allocate (pool miss or oversized).
	News int64
	// Drops counts Puts discarded (unpoolable capacity or full class).
	Drops int64
}

// add accumulates o into s.
func (s *Stats) add(o Stats) {
	s.Gets += o.Gets
	s.Puts += o.Puts
	s.News += o.News
	s.Drops += o.Drops
}

// Pool is a size-classed free list of []T scratch buffers. Size classes
// are powers of two from 64 to 16Mi elements; a Get is served from the
// smallest class that fits, so a buffer recycled from one call site can
// satisfy a differently-sized request from another. The zero value is
// ready to use.
type Pool[T any] struct {
	mu      sync.Mutex
	classes [numClasses][][]T
	stats   Stats
}

// NewPool returns an empty pool. Equivalent to new(Pool[T]); provided
// for symmetry with the rest of the repo's constructors.
func NewPool[T any]() *Pool[T] { return new(Pool[T]) }

// classFor returns the index of the smallest class holding ≥ n
// elements, or -1 when n exceeds the largest class.
func classFor(n int) int {
	size := 1 << minClassBits
	for c := 0; c < numClasses; c++ {
		if n <= size {
			return c
		}
		size <<= 1
	}
	return -1
}

// classSize returns class c's capacity in elements.
func classSize(c int) int { return 1 << (minClassBits + c) }

// Get returns a length-n slice with STALE contents: the caller owns it
// until Put and must overwrite every element it reads. Requests larger
// than the biggest size class are allocated directly (and will be
// dropped again on Put). Get(0) returns nil.
func (p *Pool[T]) Get(n int) []T {
	if n <= 0 {
		return nil
	}
	c := classFor(n)
	p.mu.Lock()
	p.stats.Gets++
	if c >= 0 {
		if free := p.classes[c]; len(free) > 0 {
			s := free[len(free)-1]
			free[len(free)-1] = nil
			p.classes[c] = free[:len(free)-1]
			p.mu.Unlock()
			return s[:n]
		}
	}
	p.stats.News++
	p.mu.Unlock()
	if c < 0 {
		return make([]T, n)
	}
	return make([]T, classSize(c))[:n]
}

// Put recycles a buffer for a later Get. The caller must not touch s
// afterwards. Buffers whose capacity is below the smallest class, above
// the largest, or whose class is already full are dropped (counted in
// Stats.Drops) — Put never errors.
func (p *Pool[T]) Put(s []T) {
	n := cap(s)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Puts++
	if n < 1<<minClassBits || n > 1<<maxClassBits {
		// Below the smallest class or above the largest: unpoolable.
		p.stats.Drops++
		return
	}
	// File under the largest class the capacity fully covers, so a Get
	// from that class always has enough room.
	c := classFor(n)
	if classSize(c) > n {
		c--
	}
	if len(p.classes[c]) >= defaultKeep {
		p.stats.Drops++
		return
	}
	p.classes[c] = append(p.classes[c], s[:0])
}

// Stats samples the counters.
func (p *Pool[T]) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Set bundles the element types the sample path recycles: pixel bytes,
// tensor float32s, signal/spectrogram float64s, FFT complex128s, and
// coefficient int32s. One Set is the shared recycle point between a
// producer (dataprep.Executor) and whichever consumer returns the
// output buffers (train's extract stage, a benchmark loop).
type Set struct {
	U8   Pool[uint8]
	F32  Pool[float32]
	F64  Pool[float64]
	C128 Pool[complex128]
	I32  Pool[int32]
}

// NewSet returns an empty Set.
func NewSet() *Set { return &Set{} }

// Stats aggregates every typed pool's counters.
func (s *Set) Stats() Stats {
	var out Stats
	out.add(s.U8.Stats())
	out.add(s.F32.Stats())
	out.add(s.F64.Stats())
	out.add(s.C128.Stats())
	out.add(s.I32.Stats())
	return out
}
