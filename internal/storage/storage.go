// Package storage models the NVMe SSDs that feed TrainBox's data
// preparation, plus a small in-memory dataset shard store used by the
// functional pipeline.
//
// The performance model is intentionally the one the paper uses: SSDs
// matter only through sequential read bandwidth (Figures 10/11 account
// an "SSD read" component), so an SSD is a bandwidth-limited server. The
// shard store exists so end-to-end tests can move real JPEG/PCM payloads
// through the same code path the models account for.
package storage

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"trainbox/internal/faults"
	"trainbox/internal/metrics"
	"trainbox/internal/units"
)

// SSDSpec describes one NVMe device.
type SSDSpec struct {
	Name string
	// ReadBandwidth is the sequential read bandwidth.
	ReadBandwidth units.BytesPerSec
	// Capacity bounds stored bytes; 0 means unbounded (model-only use).
	Capacity units.Bytes
}

// DefaultSSDSpec matches a datacenter NVMe drive of the paper's era
// (~3.2 GB/s sequential read).
func DefaultSSDSpec() SSDSpec {
	return SSDSpec{Name: "nvme", ReadBandwidth: units.BytesPerSec(3.2 * 1e9), Capacity: 4 * units.TB}
}

// ReadTime returns the time to stream v bytes from the device.
func (s SSDSpec) ReadTime(v units.Bytes) float64 {
	return units.Seconds(v, s.ReadBandwidth)
}

// Object is one stored dataset item (a JPEG file or a PCM stream) with
// its label.
type Object struct {
	Key   string
	Label int
	Data  []byte
}

// Store is an in-memory object store standing in for one SSD's dataset
// shard. It is safe for concurrent use.
type Store struct {
	spec SSDSpec

	mu      sync.RWMutex
	objects map[string]Object
	keys    []string // sorted iteration order
	used    units.Bytes
	dirty   bool

	inj   faults.Injector
	retry faults.RetryPolicy

	mBytesRead    *metrics.Counter   // storage.<name>.bytes_read
	mReads        *metrics.Counter   // storage.<name>.reads
	mReadNs       *metrics.Histogram // storage.<name>.read_ns
	mRetries      *metrics.Counter   // storage.<name>.retries
	mBackoffNs    *metrics.Counter   // storage.<name>.retry_backoff_ns
	mPuts         *metrics.Counter   // storage.<name>.puts
	mBytesWritten *metrics.Counter   // storage.<name>.bytes_written
	mMisses       *metrics.Counter   // storage.<name>.misses
}

// NewStore creates an empty shard on a device with the given spec.
func NewStore(spec SSDSpec) *Store {
	return &Store{spec: spec, objects: map[string]Object{}}
}

// Spec returns the device description.
func (s *Store) Spec() SSDSpec { return s.spec }

// WithMetrics attaches a registry: every successful read reports bytes
// read, read count, and read-latency quantiles; every successful write
// reports put count and bytes written; reads of absent keys count as
// misses — all under "storage.<device>.*". Attach before the store is
// shared across goroutines; returns s for chaining.
func (s *Store) WithMetrics(reg *metrics.Registry) *Store {
	prefix := "storage." + s.spec.Name + "."
	s.mBytesRead = reg.Counter(prefix + "bytes_read")
	s.mReads = reg.Counter(prefix + "reads")
	s.mReadNs = reg.Histogram(prefix + "read_ns")
	s.mRetries = reg.Counter(prefix + "retries")
	s.mBackoffNs = reg.Counter(prefix + "retry_backoff_ns")
	s.mPuts = reg.Counter(prefix + "puts")
	s.mBytesWritten = reg.Counter(prefix + "bytes_written")
	s.mMisses = reg.Counter(prefix + "misses")
	return s
}

// WithFaults attaches a fault injector consulted on every GetContext
// read attempt under op name "storage.read" — the chaos-testing hook.
// A nil injector (the default) keeps the fault-free fast path. Attach
// before the store is shared across goroutines; returns s for chaining.
func (s *Store) WithFaults(inj faults.Injector) *Store {
	s.inj = inj
	return s
}

// WithRetry makes GetContext survive transient read faults: each read
// runs under the policy's bounded retry loop with exponential backoff,
// jitter, and per-attempt deadlines. Permanent errors (a missing key,
// a cancelled context) are never retried. Retry counts and backoff time
// report under "storage.<device>.retries" / ".retry_backoff_ns" when a
// registry is attached. Attach before sharing; returns s for chaining.
func (s *Store) WithRetry(p faults.RetryPolicy) *Store {
	s.retry = p
	return s
}

// Put stores an object, replacing any previous object with the same key.
// It fails when the device capacity would be exceeded.
func (s *Store) Put(obj Object) error {
	if obj.Key == "" {
		return fmt.Errorf("storage: empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.used + units.Bytes(len(obj.Data))
	if old, ok := s.objects[obj.Key]; ok {
		next -= units.Bytes(len(old.Data))
	} else {
		s.dirty = true
	}
	if s.spec.Capacity > 0 && next > s.spec.Capacity {
		return fmt.Errorf("storage: %s full: %v + %d bytes exceeds %v",
			s.spec.Name, s.used, len(obj.Data), s.spec.Capacity)
	}
	s.objects[obj.Key] = obj
	s.used = next
	s.mPuts.Inc()
	s.mBytesWritten.Add(int64(len(obj.Data)))
	return nil
}

// Get retrieves an object by key.
func (s *Store) Get(key string) (Object, error) {
	start := time.Now()
	s.mu.RLock()
	obj, ok := s.objects[key]
	s.mu.RUnlock()
	if !ok {
		// The missing-key path is the only miss: fault-injected or
		// cancelled attempts are transient and report as retries, not as
		// absent data. GetContext inherits this count through Get.
		s.mMisses.Inc()
		return Object{}, fmt.Errorf("storage: %s: no object %q", s.spec.Name, key)
	}
	s.mReads.Inc()
	s.mBytesRead.Add(int64(len(obj.Data)))
	s.mReadNs.ObserveDuration(time.Since(start))
	return obj, nil
}

// GetContext retrieves an object by key, honouring cancellation: a read
// issued after the pipeline's context is cancelled fails immediately
// instead of feeding a dead pipeline. The in-memory lookup itself is
// not interruptible (it completes in microseconds); the context gate is
// the contract real storage backends would extend to in-flight I/O.
//
// With a fault injector attached (WithFaults) each attempt first runs
// the injector's decision; with a retry policy attached (WithRetry)
// transient faults are retried with backoff instead of surfacing. With
// neither configured this is exactly Get plus the context gate.
func (s *Store) GetContext(ctx context.Context, key string) (Object, error) {
	if err := ctx.Err(); err != nil {
		return Object{}, fmt.Errorf("storage: %s: read %q: %w", s.spec.Name, key, err)
	}
	if s.inj == nil && !s.retry.Enabled() {
		return s.Get(key)
	}
	var obj Object
	stats, err := s.retry.Do(ctx, "storage.read", key, func(actx context.Context, attempt int) error {
		if ferr := faults.Apply(actx, s.inj, faults.Op{Name: "storage.read", Key: key, Attempt: attempt}); ferr != nil {
			return fmt.Errorf("storage: %s: read %q: %w", s.spec.Name, key, ferr)
		}
		var gerr error
		obj, gerr = s.Get(key)
		return gerr
	})
	if stats.Attempts > 1 {
		s.mRetries.Add(int64(stats.Attempts - 1))
		s.mBackoffNs.Add(int64(stats.Backoff))
	}
	if err != nil {
		return Object{}, err
	}
	return obj, nil
}

// Keys returns all keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dirty {
		s.keys = s.keys[:0]
		for k := range s.objects {
			s.keys = append(s.keys, k)
		}
		sort.Strings(s.keys)
		s.dirty = false
	}
	return append([]string(nil), s.keys...)
}

// Len returns the number of stored objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// UsedBytes returns the stored byte total.
func (s *Store) UsedBytes() units.Bytes {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.used
}

// MeanObjectSize returns the average stored object size, or 0 when empty.
// The system model uses it as the per-sample SSD read volume.
func (s *Store) MeanObjectSize() units.Bytes {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.objects) == 0 {
		return 0
	}
	return s.used / units.Bytes(len(s.objects))
}

// Partition distributes keys round-robin across n shards — the train
// initializer's data-distribution step ("distributes the data to SSDs in
// each train box", Section V-A). It returns the key lists per shard.
func Partition(keys []string, n int) ([][]string, error) {
	if n <= 0 {
		return nil, fmt.Errorf("storage: cannot partition into %d shards", n)
	}
	out := make([][]string, n)
	for i, k := range keys {
		out[i%n] = append(out[i%n], k)
	}
	return out, nil
}
