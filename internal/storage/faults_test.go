package storage

import (
	"context"
	"errors"
	"testing"
	"time"

	"trainbox/internal/faults"
	"trainbox/internal/metrics"
)

// attemptGate injects a chosen fault on every attempt below pass —
// the deterministic "fails twice then recovers" device for retry tests.
type attemptGate struct {
	pass  int
	fault faults.Fault
}

func (g attemptGate) Inject(op faults.Op) faults.Fault {
	if op.Attempt < g.pass {
		return g.fault
	}
	return faults.Fault{}
}

func faultyStoreFixture(t *testing.T) *Store {
	t.Helper()
	s := NewStore(DefaultSSDSpec())
	if err := s.Put(Object{Key: "obj", Label: 7, Data: []byte("payload")}); err != nil {
		t.Fatal(err)
	}
	return s
}

func quickRetry(attempts int) faults.RetryPolicy {
	return faults.RetryPolicy{
		MaxAttempts: attempts,
		BaseBackoff: 50 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
		Jitter:      0.5,
	}
}

// TestStoreRetryRecoversTransientFaults: reads that fail with injected
// transient errors must succeed after backoff, with every retry and
// the total backoff visible in the store's metrics.
func TestStoreRetryRecoversTransientFaults(t *testing.T) {
	s := faultyStoreFixture(t)
	reg := metrics.NewRegistry()
	s.WithMetrics(reg).
		WithFaults(attemptGate{pass: 2, fault: faults.Fault{Err: faults.Transient(faults.ErrInjected)}}).
		WithRetry(quickRetry(4))
	obj, err := s.GetContext(context.Background(), "obj")
	if err != nil {
		t.Fatalf("retried read failed: %v", err)
	}
	if obj.Label != 7 || string(obj.Data) != "payload" {
		t.Errorf("got %+v", obj)
	}
	if got := reg.Counter("storage.nvme.retries").Value(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if reg.Counter("storage.nvme.retry_backoff_ns").Value() <= 0 {
		t.Error("retry backoff not recorded")
	}
}

// TestStoreRetryExhaustionSurfacesInjectedError: a fault outlasting the
// attempt budget must surface the injected error, not a retry artifact.
func TestStoreRetryExhaustionSurfacesInjectedError(t *testing.T) {
	s := faultyStoreFixture(t)
	reg := metrics.NewRegistry()
	s.WithMetrics(reg).
		WithFaults(faults.NewErrorRate(1, 1.0, nil)). // every attempt fails
		WithRetry(quickRetry(3))
	if _, err := s.GetContext(context.Background(), "obj"); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if got := reg.Counter("storage.nvme.retries").Value(); got != 2 {
		t.Errorf("retries = %d, want 2 (3 attempts)", got)
	}
}

// TestStoreNonTransientFaultNotRetried: permanent injected errors must
// fail immediately without consuming the retry budget.
func TestStoreNonTransientFaultNotRetried(t *testing.T) {
	s := faultyStoreFixture(t)
	reg := metrics.NewRegistry()
	errCorrupt := errors.New("unrecoverable corruption")
	s.WithMetrics(reg).
		WithFaults(faults.NewErrorRate(1, 1.0, errCorrupt)).
		WithRetry(quickRetry(4))
	if _, err := s.GetContext(context.Background(), "obj"); !errors.Is(err, errCorrupt) {
		t.Fatalf("err = %v, want %v", err, errCorrupt)
	}
	if got := reg.Counter("storage.nvme.retries").Value(); got != 0 {
		t.Errorf("retries = %d, want 0", got)
	}
}

// TestStoreMissingKeyNotRetried: a data error (no such object) is not a
// device fault — the retry layer must not mask it or spend attempts.
func TestStoreMissingKeyNotRetried(t *testing.T) {
	s := faultyStoreFixture(t)
	reg := metrics.NewRegistry()
	s.WithMetrics(reg).WithRetry(quickRetry(4))
	if _, err := s.GetContext(context.Background(), "missing"); err == nil {
		t.Fatal("missing key accepted")
	}
	if got := reg.Counter("storage.nvme.retries").Value(); got != 0 {
		t.Errorf("retries = %d, want 0", got)
	}
}

// TestStoreAttemptTimeoutRescuesStall: a stalled first attempt must be
// cut off by the per-attempt deadline and retried to success — the only
// recovery path for a read that hangs instead of failing.
func TestStoreAttemptTimeoutRescuesStall(t *testing.T) {
	s := faultyStoreFixture(t)
	p := quickRetry(3)
	p.AttemptTimeout = 10 * time.Millisecond
	s.WithFaults(attemptGate{pass: 1, fault: faults.Fault{Stall: true}}).WithRetry(p)
	start := time.Now()
	obj, err := s.GetContext(context.Background(), "obj")
	if err != nil {
		t.Fatalf("stalled read not rescued: %v", err)
	}
	if string(obj.Data) != "payload" {
		t.Errorf("got %+v", obj)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("rescue took %v — attempt deadline not applied", elapsed)
	}
}

// TestStoreStallWithoutTimeoutHonoursCaller: with no per-attempt
// deadline, only the caller's context bounds a stalled read.
func TestStoreStallWithoutTimeoutHonoursCaller(t *testing.T) {
	s := faultyStoreFixture(t)
	s.WithFaults(faults.NewStall(1, 1.0)).WithRetry(quickRetry(2))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := s.GetContext(ctx, "obj"); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}

// TestStoreInjectedLatencyStillSucceeds: latency spikes delay reads but
// do not fail them — no retries, correct data.
func TestStoreInjectedLatencyStillSucceeds(t *testing.T) {
	s := faultyStoreFixture(t)
	reg := metrics.NewRegistry()
	s.WithMetrics(reg).WithFaults(faults.Metered(faults.NewLatency(1, 1.0, time.Millisecond), reg))
	obj, err := s.GetContext(context.Background(), "obj")
	if err != nil || string(obj.Data) != "payload" {
		t.Fatalf("delayed read: %v %+v", err, obj)
	}
	if reg.Counter("faults.injector.delays").Value() != 1 {
		t.Error("injected delay not metered")
	}
	if reg.Counter("storage.nvme.retries").Value() != 0 {
		t.Error("latency spike consumed retries")
	}
}

// TestStoreFaultFreeFastPathPreserved: with neither injector nor policy
// the contextful read is exactly Get plus the cancellation gate.
func TestStoreFaultFreeFastPathPreserved(t *testing.T) {
	s := faultyStoreFixture(t)
	obj, err := s.GetContext(context.Background(), "obj")
	if err != nil || string(obj.Data) != "payload" {
		t.Fatalf("fast path: %v %+v", err, obj)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.GetContext(ctx, "obj"); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled fast-path read: %v", err)
	}
}
