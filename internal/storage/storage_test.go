package storage

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"trainbox/internal/metrics"
	"trainbox/internal/units"
)

func TestReadTime(t *testing.T) {
	spec := SSDSpec{Name: "x", ReadBandwidth: 2 * units.GBps}
	if got := spec.ReadTime(units.Bytes(4e9)); math.Abs(got-2) > 1e-9 {
		t.Errorf("ReadTime = %v, want 2", got)
	}
	if spec.ReadTime(0) != 0 {
		t.Error("zero-byte read should take 0")
	}
}

func TestStorePutGet(t *testing.T) {
	s := NewStore(DefaultSSDSpec())
	obj := Object{Key: "img-0001", Label: 3, Data: []byte("jpegdata")}
	if err := s.Put(obj); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("img-0001")
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != 3 || string(got.Data) != "jpegdata" {
		t.Errorf("got %+v", got)
	}
	if _, err := s.Get("missing"); err == nil {
		t.Error("missing key accepted")
	}
	if err := s.Put(Object{Key: ""}); err == nil {
		t.Error("empty key accepted")
	}
}

func TestStoreReplaceAdjustsUsage(t *testing.T) {
	s := NewStore(SSDSpec{Name: "x", ReadBandwidth: units.GBps, Capacity: 100})
	if err := s.Put(Object{Key: "a", Data: make([]byte, 60)}); err != nil {
		t.Fatal(err)
	}
	// Replacing with a smaller object must free space.
	if err := s.Put(Object{Key: "a", Data: make([]byte, 10)}); err != nil {
		t.Fatal(err)
	}
	if s.UsedBytes() != 10 {
		t.Errorf("used = %v, want 10", s.UsedBytes())
	}
	if err := s.Put(Object{Key: "b", Data: make([]byte, 80)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Object{Key: "c", Data: make([]byte, 20)}); err == nil {
		t.Error("over-capacity put accepted")
	}
}

func TestStoreKeysSortedAndStable(t *testing.T) {
	s := NewStore(DefaultSSDSpec())
	for _, k := range []string{"c", "a", "b"} {
		if err := s.Put(Object{Key: k, Data: []byte{1}}); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Errorf("keys = %v", keys)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestStoreMeanObjectSize(t *testing.T) {
	s := NewStore(DefaultSSDSpec())
	if s.MeanObjectSize() != 0 {
		t.Error("empty store mean should be 0")
	}
	s.Put(Object{Key: "a", Data: make([]byte, 100)})
	s.Put(Object{Key: "b", Data: make([]byte, 300)})
	if got := s.MeanObjectSize(); got != 200 {
		t.Errorf("mean = %v, want 200", got)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore(DefaultSSDSpec())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if err := s.Put(Object{Key: key, Data: []byte{byte(i)}}); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(key); err != nil {
					t.Error(err)
					return
				}
				s.Keys()
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 400 {
		t.Errorf("Len = %d, want 400", s.Len())
	}
}

func TestPartitionRoundRobin(t *testing.T) {
	keys := []string{"a", "b", "c", "d", "e"}
	shards, err := Partition(keys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards[0]) != 3 || len(shards[1]) != 2 {
		t.Errorf("shard sizes %d/%d", len(shards[0]), len(shards[1]))
	}
	if _, err := Partition(keys, 0); err == nil {
		t.Error("zero shards accepted")
	}
}

func TestPartitionPropertyCompleteAndBalanced(t *testing.T) {
	f := func(nKeys uint8, nShards uint8) bool {
		n := int(nShards%16) + 1
		keys := make([]string, nKeys)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%03d", i)
		}
		shards, err := Partition(keys, n)
		if err != nil {
			return false
		}
		seen := map[string]bool{}
		minL, maxL := len(keys)+1, -1
		for _, sh := range shards {
			if len(sh) < minL {
				minL = len(sh)
			}
			if len(sh) > maxL {
				maxL = len(sh)
			}
			for _, k := range sh {
				if seen[k] {
					return false // duplicate
				}
				seen[k] = true
			}
		}
		return len(seen) == len(keys) && maxL-minL <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGetContext(t *testing.T) {
	s := NewStore(DefaultSSDSpec())
	if err := s.Put(Object{Key: "a", Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	obj, err := s.GetContext(context.Background(), "a")
	if err != nil || obj.Key != "a" {
		t.Fatalf("GetContext = %+v, %v", obj, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.GetContext(ctx, "a"); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled read: err = %v, want context.Canceled", err)
	}
	if _, err := s.GetContext(context.Background(), "missing"); err == nil {
		t.Error("missing key accepted")
	}
}

// TestStoreMetrics: a metered store must count reads and bytes and
// record read-latency quantiles; failed lookups must not count.
func TestStoreMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewStore(DefaultSSDSpec()).WithMetrics(reg)
	if err := s.Put(Object{Key: "a", Data: make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Object{Key: "b", Data: make([]byte, 50)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("missing"); err == nil {
		t.Fatal("missing key read succeeded")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["storage.nvme.reads"]; got != 3 {
		t.Errorf("reads = %d, want 3 (failed lookup must not count)", got)
	}
	if got := snap.Counters["storage.nvme.bytes_read"]; got != 250 {
		t.Errorf("bytes_read = %d, want 250", got)
	}
	lat := snap.Histograms["storage.nvme.read_ns"]
	if lat.Count != 3 || lat.Max <= 0 {
		t.Errorf("read_ns histogram = %+v, want 3 positive observations", lat)
	}
}
