package storage

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"trainbox/internal/metrics"
)

// TestStoreWriteAndMissMetrics: puts, bytes_written, and misses land in
// the registry — replacement puts count too (bytes_written is write
// volume, not residency), transient-looking read paths don't inflate
// misses, and the unmetered store stays nil-safe.
func TestStoreWriteAndMissMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewStore(DefaultSSDSpec()).WithMetrics(reg)
	if err := s.Put(Object{Key: "a", Data: make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Object{Key: "b", Data: make([]byte, 50)}); err != nil {
		t.Fatal(err)
	}
	// Replacing a key is still one write of its payload.
	if err := s.Put(Object{Key: "a", Data: make([]byte, 30)}); err != nil {
		t.Fatal(err)
	}
	// A rejected over-capacity put must not count.
	tiny := NewStore(SSDSpec{Name: "tiny", Capacity: 10}).WithMetrics(reg)
	if err := tiny.Put(Object{Key: "big", Data: make([]byte, 11)}); err == nil {
		t.Fatal("over-capacity put accepted")
	}

	if _, err := s.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("ghost"); err == nil {
		t.Fatal("missing key served")
	}
	if _, err := s.GetContext(context.Background(), "phantom"); err == nil {
		t.Fatal("missing key served via GetContext")
	}
	// A cancelled read is not a miss — the data may well be there.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.GetContext(ctx, "a"); err == nil {
		t.Fatal("cancelled read served")
	}

	snap := reg.Snapshot()
	if got := snap.Counters["storage.nvme.puts"]; got != 3 {
		t.Errorf("puts = %d, want 3", got)
	}
	if got := snap.Counters["storage.nvme.bytes_written"]; got != 180 {
		t.Errorf("bytes_written = %d, want 180", got)
	}
	if got := snap.Counters["storage.nvme.misses"]; got != 2 {
		t.Errorf("misses = %d, want 2", got)
	}
	if got := snap.Counters["storage.tiny.puts"]; got != 0 {
		t.Errorf("tiny puts = %d, want 0 (the put failed)", got)
	}

	// No registry: the same paths must be no-ops, not panics.
	bare := NewStore(DefaultSSDSpec())
	if err := bare.Put(Object{Key: "x", Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := bare.Get("nope"); err == nil {
		t.Fatal("missing key served on bare store")
	}
}

// TestPartitionEdgeCases: more shards than keys leaves trailing shards
// empty (not nil-length mismatch), an empty key list yields n empty
// shards, and n == 1 returns everything in order.
func TestPartitionEdgeCases(t *testing.T) {
	keys := []string{"a", "b", "c"}

	shards, err := Partition(keys, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 5 {
		t.Fatalf("shard count = %d, want 5", len(shards))
	}
	total := 0
	for i, sh := range shards {
		total += len(sh)
		if i >= len(keys) && len(sh) != 0 {
			t.Errorf("shard %d has %d keys, want empty", i, len(sh))
		}
	}
	if total != len(keys) {
		t.Fatalf("partition lost keys: %d of %d", total, len(keys))
	}

	empty, err := Partition(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 3 {
		t.Fatalf("empty partition shard count = %d, want 3", len(empty))
	}
	for i, sh := range empty {
		if len(sh) != 0 {
			t.Errorf("shard %d of empty partition has %d keys", i, len(sh))
		}
	}

	one, err := Partition(keys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || len(one[0]) != len(keys) {
		t.Fatalf("single shard = %v", one)
	}
	for i, k := range keys {
		if one[0][i] != k {
			t.Fatalf("single shard reordered keys: %v", one[0])
		}
	}

	if _, err := Partition(keys, 0); err == nil {
		t.Error("Partition(keys, 0) accepted")
	}
	if _, err := Partition(keys, -1); err == nil {
		t.Error("Partition(keys, -1) accepted")
	}
}

// TestStoreKeysPutHammer drives Keys, Put, and MeanObjectSize from many
// goroutines at once: Keys' lazily re-sorted cache (the dirty flag)
// must never tear under concurrent inserts, and every returned snapshot
// must be sorted. Run with -race.
func TestStoreKeysPutHammer(t *testing.T) {
	s := NewStore(DefaultSSDSpec())
	const (
		writers = 4
		readers = 4
		rounds  = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("w%d-%04d", w, i)
				if err := s.Put(Object{Key: key, Data: make([]byte, 8+i%16)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				keys := s.Keys()
				for j := 1; j < len(keys); j++ {
					if keys[j-1] >= keys[j] {
						t.Errorf("Keys() snapshot unsorted at %d: %q ≥ %q", j, keys[j-1], keys[j])
						return
					}
				}
				_ = s.MeanObjectSize()
				_ = s.Len()
				_ = s.UsedBytes()
			}
		}()
	}
	wg.Wait()
	if got, want := s.Len(), writers*rounds; got != want {
		t.Fatalf("stored %d objects, want %d", got, want)
	}
	if keys := s.Keys(); len(keys) != writers*rounds {
		t.Fatalf("final Keys() has %d entries, want %d", len(keys), writers*rounds)
	}
}
