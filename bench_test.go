// Benchmarks regenerating every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`), plus substrate
// micro-benchmarks for the kernels the models are calibrated from. Each
// BenchmarkFig*/BenchmarkTable* reports the experiment's headline number
// as a custom metric so the bench log doubles as the paper-vs-measured
// record.
package trainbox_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"trainbox/internal/arch"
	"trainbox/internal/collective"
	"trainbox/internal/core"
	"trainbox/internal/dataprep"
	"trainbox/internal/dsp"
	"trainbox/internal/experiments"
	"trainbox/internal/fpga"
	"trainbox/internal/imgproc"
	"trainbox/internal/jpegdec"
	"trainbox/internal/pcie"
	"trainbox/internal/storage"
	"trainbox/internal/workload"
)

func BenchmarkTable01Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.TableI(); len(tb.Rows) != 7 {
			b.Fatal("table I incomplete")
		}
	}
}

func BenchmarkTable02FPGAImage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableII(); err != nil {
			b.Fatal(err)
		}
	}
	u, err := fpga.XCVU9P().Utilization(fpga.ImageEngines())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(100*u.LUTs, "%LUT(paper=78.7)")
	b.ReportMetric(100*u.DSP, "%DSP(paper=30.5)")
}

func BenchmarkTable03FPGAAudio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableIII(); err != nil {
			b.Fatal(err)
		}
	}
	u, err := fpga.XCVU9P().Utilization(fpga.AudioEngines())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(100*u.LUTs, "%LUT(paper=80.2)")
	b.ReportMetric(100*u.BRAM, "%BRAM(paper=77.1)")
}

func BenchmarkFig02aTrends(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.Fig2a(); len(tb.Rows) == 0 {
			b.Fatal("empty trends")
		}
	}
}

func BenchmarkFig02bRingLatency(b *testing.B) {
	var at256 float64
	for i := 0; i < b.N; i++ {
		at256 = experiments.Fig2b().NormalizedAt256
	}
	b.ReportMetric(at256, "norm-latency@256(paper≈2)")
}

func BenchmarkFig03Ladder(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.FinalPrepOverOthers
	}
	b.ReportMetric(ratio, "prep/others(paper=54.9)")
}

func BenchmarkFig05Augmentation(b *testing.B) {
	cfg := experiments.DefaultFig5Config()
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		gap = 100 * (res.FinalWith - res.FinalWithout)
	}
	b.ReportMetric(gap, "acc-gap-points(paper=29.1)")
}

func BenchmarkFig08BaselineScalability(b *testing.B) {
	var sat float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		sat = res.MaxSaturation
	}
	b.ReportMetric(sat, "saturation-accels(paper≈18)")
}

func BenchmarkFig09LatencyDecomposition(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		share = 100 * res.MeanPrepShare
	}
	b.ReportMetric(share, "prep-share-%(paper=98.1)")
}

func BenchmarkFig10Requirements(b *testing.B) {
	var res experiments.Fig10Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig10()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MaxCPU, "cpu-x-dgx2(paper=100.7)")
	b.ReportMetric(res.MaxMemory, "mem-x-dgx2(paper=17.9)")
	b.ReportMetric(res.MaxPCIe, "pcie-x-dgx2(paper=18.0)")
}

func BenchmarkFig11Decomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig19Speedups(b *testing.B) {
	var res experiments.Fig19Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig19()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.AvgTrainBox, "avg-speedup(paper=44.4)")
	b.ReportMetric(res.AvgAcc, "acc-speedup(paper=3.32)")
	b.ReportMetric(res.MaxTrainBox, "max-speedup(paper=84.3)")
	b.ReportMetric(res.ClusteringGain, "clustering-gain(paper=13.4)")
}

func BenchmarkFig20BatchSweep(b *testing.B) {
	var sp float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig20()
		if err != nil {
			b.Fatal(err)
		}
		sp = res.SpeedupAtLargest
	}
	b.ReportMetric(sp, "speedup@8192(paper≈55)")
}

func BenchmarkFig21ScalabilityInception(b *testing.B) {
	var final float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig21("Inception-v4")
		if err != nil {
			b.Fatal(err)
		}
		final = res.FinalByConfig["TrainBox"]
	}
	b.ReportMetric(final, "accel-equiv@256(paper≈256)")
}

func BenchmarkFig21ScalabilityTFSR(b *testing.B) {
	var final, noPool float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig21("TF-SR")
		if err != nil {
			b.Fatal(err)
		}
		final = res.FinalByConfig["TrainBox"]
		noPool = res.FinalByConfig["TrainBox w/o prep-pool"]
	}
	b.ReportMetric(final, "accel-equiv@256(paper≈256)")
	b.ReportMetric(noPool, "no-pool-accel-equiv")
}

func BenchmarkFig22Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig22(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks -------------------------------------

func BenchmarkKernelFFT512(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 512)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	buf := make([]complex128, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := dsp.FFT(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelLogMel(b *testing.B) {
	sig, err := dsp.SynthesizeAudio(dsp.DefaultSynthConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := dsp.DefaultMelConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dsp.LogMelSpectrogram(sig, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelImagePipeline(b *testing.B) {
	img := imgproc.SynthesizeImage(imgproc.DefaultSynthConfig(), 1, 3)
	data, err := imgproc.EncodeJPEG(img, 85)
	if err != nil {
		b.Fatal(err)
	}
	cfg := dataprep.DefaultImageConfig()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataprep.PrepareImage(data, cfg, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkReducer(b *testing.B, name string, opts ...collective.Option) {
	const ranks, size = 8, 4096
	red, err := collective.ByName(name, opts...)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	orig := make([][]float64, ranks)
	for r := range orig {
		orig[r] = make([]float64, size)
		for i := range orig[r] {
			orig[r][i] = rng.NormFloat64()
		}
	}
	work := make([][]float64, ranks)
	for r := range work {
		work[r] = make([]float64, size)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := range work {
			copy(work[r], orig[r])
		}
		if err := red.Reduce(ctx, work); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelRingAllReduce(b *testing.B) {
	benchmarkReducer(b, "ring")
}

func BenchmarkKernelParamServerReduce(b *testing.B) {
	benchmarkReducer(b, "ps", collective.WithShards(4))
}

func BenchmarkKernelMaxMinFair(b *testing.B) {
	sys, err := arch.Build(arch.Config{Kind: arch.Baseline, NumAccels: 64})
	if err != nil {
		b.Fatal(err)
	}
	flows := make([]pcie.Flow, 0, 64)
	for i, a := range sys.Accels {
		flows = append(flows, pcie.Flow{Src: sys.SSDs[i%len(sys.SSDs)], Dst: a, Weight: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Topo.MaxMinFair(flows)
	}
}

func BenchmarkKernelSolve256(b *testing.B) {
	sys, err := arch.Build(arch.Config{Kind: arch.TrainBox, NumAccels: 256})
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.ByName("Resnet-50")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(sys, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelDESBaseline(b *testing.B) {
	sys, err := arch.Build(arch.Config{Kind: arch.Baseline, NumAccels: 64})
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.ByName("Resnet-50")
	if err != nil {
		b.Fatal(err)
	}
	opts := core.SimOptions{ChunkSamples: 64, Chunks: 500, InFlight: 128}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SimulatePrep(sys, w, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrefetcherThroughput measures delivered samples/sec through
// the full staged pipeline (fetch→prepare under a prefetching consumer)
// at several pipeline depths, so refactors of the pipeline runtime show
// up in the perf trajectory. Depth 1 is the paper's double buffering.
func BenchmarkPrefetcherThroughput(b *testing.B) {
	store := storage.NewStore(storage.DefaultSSDSpec())
	const items = 8
	if err := dataprep.BuildImageDataset(store, items, 4, 1); err != nil {
		b.Fatal(err)
	}
	keys := store.Keys()
	for _, depth := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			exec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: dataprep.DefaultImageConfig()}, 0, 1)
			b.ResetTimer()
			samples := 0
			start := time.Now()
			for i := 0; i < b.N; i++ {
				pf, err := dataprep.NewPrefetcher(exec, store, keys, 3, dataprep.WithDepth(depth))
				if err != nil {
					b.Fatal(err)
				}
				for {
					batch, err := pf.Next()
					if err != nil {
						if err != dataprep.ErrExhausted {
							b.Fatal(err)
						}
						break
					}
					samples += len(batch.Samples)
				}
				pf.Close()
			}
			b.ReportMetric(float64(samples)/time.Since(start).Seconds(), "samples/s")
		})
	}
}

func BenchmarkKernelDatasetBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		store := storage.NewStore(storage.DefaultSSDSpec())
		if err := dataprep.BuildImageDataset(store, 4, 4, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks ---------------------------------------------

func BenchmarkAblationFPGAProvisioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFPGAProvisioning("Resnet-50"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEthernet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationEthernet("TF-SR"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSyncScheme(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSyncScheme(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRCCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRCCapacity("Resnet-50"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPoolSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPoolSharing(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelTrainingReplay(b *testing.B) {
	sys, err := arch.Build(arch.Config{Kind: arch.TrainBox, NumAccels: 64})
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.ByName("Resnet-50")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SimulateTraining(sys, w, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelTreeAllReduce(b *testing.B) {
	benchmarkReducer(b, "tree")
}

func BenchmarkKernelMFCC(b *testing.B) {
	sig, err := dsp.SynthesizeAudio(dsp.SynthConfig{SampleRate: 16000, Duration: 1, NumTones: 3}, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := dsp.DefaultMFCCConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dsp.MFCC(sig, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelRICAP(b *testing.B) {
	var srcs [4]*imgproc.Image
	for i := range srcs {
		srcs[i] = imgproc.SynthesizeImage(imgproc.DefaultSynthConfig(), int64(i), i)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := imgproc.RICAP(srcs, 224, 224, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStudyFailureInjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FailureStudy("Inception-v4"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStudyFutureWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FutureWork(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelVideoPipeline(b *testing.B) {
	clip, err := imgproc.SynthesizeVideo(imgproc.SynthConfig{Size: 256, Quality: 85}, 1, 2, 16)
	if err != nil {
		b.Fatal(err)
	}
	data, err := imgproc.EncodeMJPEG(clip, 85)
	if err != nil {
		b.Fatal(err)
	}
	cfg := dataprep.DefaultVideoConfig()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataprep.PrepareVideo(data, cfg, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStudyInference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.InferenceStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStudyStaticPrep(b *testing.B) {
	var pb float64
	for i := 0; i < b.N; i++ {
		pb = experiments.StaticPrep().ImagenetPB
	}
	b.ReportMetric(pb, "imagenet-PB(paper=2.2)")
}

func BenchmarkStudyHuffmanCeiling(b *testing.B) {
	var res experiments.HuffmanResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.HuffmanStudy(2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.SerialShare, "serial-share-%")
	b.ReportMetric(res.AmdahlCeiling, "amdahl-ceiling-x")
}

func BenchmarkKernelJPEGDecodeFromScratch(b *testing.B) {
	img := imgproc.SynthesizeImage(imgproc.DefaultSynthConfig(), 1, 3)
	data, err := imgproc.EncodeJPEG(img, 85)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := jpegdec.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStudyPlanner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PlannerStudy(); err != nil {
			b.Fatal(err)
		}
	}
}
