// ringallreduce demonstrates model synchronization: eight goroutine
// "accelerators" each backpropagate a different sample through identical
// replicas of the small from-scratch network, ring-all-reduce their real
// gradients, verify the result against a sequential sum, and apply the
// averaged update. It then prints the Figure 2b curve: ring latency
// saturates at twice the two-accelerator latency no matter the scale.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"trainbox/internal/collective"
	"trainbox/internal/nn"
	"trainbox/internal/report"
	"trainbox/internal/units"
)

func main() {
	demo := flag.Bool("demo", false, "short CI budget: smaller latency sweep")
	flag.Parse()
	sweep := []int{2, 4, 8, 16, 32, 64, 128, 256}
	if *demo {
		sweep = []int{2, 4, 8, 16}
	}
	const ranks = 8
	// Identical replicas: same init seed everywhere.
	replicas := make([]*nn.Network, ranks)
	for r := range replicas {
		replicas[r] = nn.NewMLP([]int{16, 32, 4}, rand.New(rand.NewSource(42)))
	}
	fmt.Printf("%d replicas of a %d-parameter model\n", ranks, replicas[0].NumParams())

	// Each rank computes gradients on its own shard.
	rng := rand.New(rand.NewSource(1))
	grads := make([][]float64, ranks)
	expected := make([]float64, replicas[0].NumParams())
	for r, net := range replicas {
		x := make([]float64, 16)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		net.ZeroGrad()
		net.LossAndBackward(net.Forward(x), rng.Intn(4))
		grads[r] = net.Gradients()
		for i, v := range grads[r] {
			expected[i] += v
		}
	}

	// Synchronize with the real chunked ring behind the Reducer API.
	ring, err := collective.NewRing()
	if err != nil {
		log.Fatal(err)
	}
	if err := ring.Reduce(context.Background(), grads); err != nil {
		log.Fatal(err)
	}
	var maxErr float64
	for r := range grads {
		for i := range grads[r] {
			if e := math.Abs(grads[r][i] - expected[i]); e > maxErr {
				maxErr = e
			}
		}
	}
	fmt.Printf("ring all-reduce vs sequential sum: max abs error %.2e across all ranks\n", maxErr)

	// Apply the synchronized (averaged) gradients everywhere.
	for r, net := range replicas {
		avg := append([]float64(nil), grads[r]...)
		for i := range avg {
			avg[i] /= ranks
		}
		if err := net.SetGradients(avg); err != nil {
			log.Fatal(err)
		}
		net.Step(0.1, 1)
	}
	// All replicas must remain bit-identical after the synchronized step.
	w0 := replicas[0].Layers[0].W
	for r := 1; r < ranks; r++ {
		for i := range w0 {
			if replicas[r].Layers[0].W[i] != w0[i] {
				log.Fatalf("replica %d diverged after synchronized step", r)
			}
		}
	}
	fmt.Println("all replicas bit-identical after the synchronized SGD step")

	// Figure 2b: the scalability argument for ring synchronization.
	m := collective.DefaultRingModel()
	const modelBytes = 100 * units.MB
	var labels []string
	var values []float64
	for _, n := range sweep {
		labels = append(labels, fmt.Sprintf("n=%d", n))
		values = append(values, m.NormalizedLatency(n, modelBytes))
	}
	fmt.Println()
	fmt.Println(report.BarChart("Figure 2b — ring sync latency (normalized to n=2)", labels, values, 40))
	central := collective.CentralModel{LinkBandwidth: m.LinkBandwidth}
	fmt.Printf("for contrast, naive gather+broadcast at n=256 costs %.0f× the ring\n",
		central.Latency(256, modelBytes)/m.Latency(256, modelBytes))
}
