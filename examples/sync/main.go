// sync demonstrates the pluggable gradient-sync backends: the same
// gradients reduced through the ring, tree, halving-doubling, and
// parameter-server reducers come out bit-identical (every backend
// applies the ring's canonical per-element reduction order over its own
// real topology), so switching backends is a topology/telemetry choice,
// not a numerics one. A training run wired with train.WithSync(ps)
// reproduces the default driver's model byte for byte — even while a
// fault injector kills a parameter-server shard every sync round — and
// the full study prices all backends plus in-network aggregation across
// box counts.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"strings"

	"trainbox/internal/collective"
	"trainbox/internal/dataprep"
	"trainbox/internal/experiments"
	"trainbox/internal/faults"
	"trainbox/internal/metrics"
	"trainbox/internal/storage"
	"trainbox/internal/train"
)

func feature(p dataprep.Prepared) ([]float64, int, error) {
	ten := p.Image
	const block = 4
	side := ten.W / block
	feat := make([]float64, side*side)
	for by := 0; by < side; by++ {
		for bx := 0; bx < side; bx++ {
			var sum float64
			for y := by * block; y < (by+1)*block; y++ {
				for x := bx * block; x < (bx+1)*block; x++ {
					sum += float64(ten.At(0, y, x))
				}
			}
			feat[by*side+bx] = sum / (block * block)
		}
	}
	return feat, p.Label, nil
}

// killShard injects a transient fault on one parameter-server shard's
// first push attempt of every round — the retry path must absorb it.
// Push op keys are "shard-<j>/rank-<r>", hence the prefix match.
type killShard struct{ shard string }

func (k killShard) Inject(op faults.Op) faults.Fault {
	if op.Name == "collective.ps.push" && strings.HasPrefix(op.Key, k.shard+"/") && op.Attempt == 0 {
		return faults.Fault{Err: faults.Transient(fmt.Errorf("injected shard death"))}
	}
	return faults.Fault{}
}

func main() {
	demo := flag.Bool("demo", false, "short CI budget: skip the full study sweep")
	flag.Parse()
	ctx := context.Background()

	// 1. One set of gradients through every backend: identical bits.
	const (
		ranks  = 7 // deliberately not a power of two
		length = 513
	)
	rng := rand.New(rand.NewSource(42))
	base := make([][]float64, ranks)
	for r := range base {
		base[r] = make([]float64, length)
		for i := range base[r] {
			base[r][i] = rng.NormFloat64()
		}
	}
	clone := func() [][]float64 {
		out := make([][]float64, ranks)
		for r := range base {
			out[r] = append([]float64(nil), base[r]...)
		}
		return out
	}
	want := clone()
	ring, err := collective.NewRing()
	if err != nil {
		log.Fatal(err)
	}
	if err := ring.Reduce(ctx, want); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d ranks × %d elements through every backend:\n", ranks, length)
	for _, name := range collective.Backends() {
		var opts []collective.Option
		if name == "ps" {
			opts = append(opts, collective.WithShards(3))
		}
		red, err := collective.ByName(name, opts...)
		if err != nil {
			log.Fatal(err)
		}
		got := clone()
		if err := red.Reduce(ctx, got); err != nil {
			log.Fatal(err)
		}
		identical := true
		for r := range got {
			for i := range got[r] {
				if math.Float64bits(got[r][i]) != math.Float64bits(want[r][i]) {
					identical = false
				}
			}
		}
		fmt.Printf("  %-8s bit-identical to ring: %v\n", red.Name(), identical)
		if !identical {
			log.Fatalf("%s diverged from the ring", red.Name())
		}
	}

	// 2. A real training job under the parameter-server backend — with a
	// shard dying on the first push of every sync round — reproduces the
	// default driver's model byte for byte.
	const items = 8
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store, items, 4, 7); err != nil {
		log.Fatal(err)
	}
	keys := store.Keys()
	imgCfg := dataprep.DefaultImageConfig()
	imgCfg.CropW, imgCfg.CropH = 32, 32
	runJob := func(reg *metrics.Registry, sync collective.Reducer) train.Result {
		exec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: imgCfg}, 2, 100)
		opts := []train.Option{
			train.WithDataset(exec, store, keys),
			train.WithFeature(feature),
		}
		if sync != nil {
			opts = append(opts, train.WithSync(sync))
		}
		r, err := train.Run(ctx, train.Config{
			Replicas: 4, Widths: []int{64, 16, 4}, Epochs: 2,
			LearningRate: 0.05, PrefetchDepth: 1, Seed: 9, Metrics: reg,
		}, opts...)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	oracle := runJob(nil, nil) // driver default: the ring

	reg := metrics.NewRegistry()
	ps, err := collective.NewParamServer(
		collective.WithShards(4),
		collective.WithMetrics(reg),
		collective.WithFaults(killShard{shard: "shard-2"}),
		collective.WithRetry(collective.DefaultPSRetry()),
	)
	if err != nil {
		log.Fatal(err)
	}
	got := runJob(reg, ps)
	snap := reg.Snapshot()
	fmt.Printf("\ntraining under ps (4 shards, shard-2 dying every round):\n")
	fmt.Printf("  final loss %.9f, default-sync oracle %.9f (bit-identical: %v)\n",
		got.FinalLoss(), oracle.FinalLoss(), got.FinalLoss() == oracle.FinalLoss())
	fmt.Printf("  %d sync rounds, %d shard retries absorbed, %d bytes moved\n",
		snap.Counters["train.driver.sync_rounds"],
		snap.Counters["collective.ps.shard_retries"],
		snap.Counters["collective.ps.bytes_moved"])
	if got.FinalLoss() != oracle.FinalLoss() {
		log.Fatal("ps-synced run diverged from the default driver")
	}
	if snap.Counters["collective.ps.shard_retries"] == 0 {
		log.Fatal("fault injector never fired")
	}

	if *demo {
		return
	}

	// 3. The full study: every backend priced across box counts, plus
	// in-network aggregation vs a host ring on the same Ethernet ports.
	res, err := experiments.SyncStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(res.Table.String())
	fmt.Printf("headline: max divergence from ring %g; in-network aggregation %.1f× over the host eth ring at 256 accels\n",
		res.MaxDivergence, res.InNetworkSpeedup)
}
