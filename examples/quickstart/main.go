// Quickstart: build the paper's baseline and TrainBox architectures at
// 256 accelerators, solve both for ResNet-50, and print where the
// bottleneck sits and what TrainBox buys — the repository's two-minute
// tour of the public API.
package main

import (
	"flag"
	"fmt"
	"log"

	"trainbox/internal/arch"
	"trainbox/internal/core"
	"trainbox/internal/report"
	"trainbox/internal/workload"
)

func main() {
	demo := flag.Bool("demo", false, "short CI budget: solve at 64 accelerators")
	flag.Parse()
	accels := workload.TargetAccelerators
	if *demo {
		accels = 64
	}
	w, err := workload.ByName("Resnet-50")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Workload: %s — %v per TPU v3-8, batch %d, %.1f MB model\n\n",
		w.Name, w.AccelRate, w.BatchSize, float64(w.ModelBytes)/1e6)

	var rows []struct {
		kind arch.Kind
		res  core.Result
	}
	for _, kind := range arch.Kinds() {
		sys, err := arch.Build(arch.Config{Kind: kind, NumAccels: accels})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Solve(sys, w)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, struct {
			kind arch.Kind
			res  core.Result
		}{kind, res})
	}

	t := report.NewTable(fmt.Sprintf("ResNet-50 at %d accelerators", accels),
		"architecture", "throughput (samples/s)", "speedup", "bottleneck")
	base := float64(rows[0].res.Throughput)
	labels := make([]string, 0, len(rows))
	values := make([]float64, 0, len(rows))
	for _, r := range rows {
		t.AddRowf(r.kind.String(), float64(r.res.Throughput),
			fmt.Sprintf("%.1f×", float64(r.res.Throughput)/base), r.res.Bottleneck)
		labels = append(labels, r.kind.String())
		values = append(values, float64(r.res.Throughput))
	}
	fmt.Println(t.String())
	fmt.Println(report.BarChart("throughput", labels, values, 40))

	fmt.Println("The baseline burns all 48 host cores on JPEG decode and augmentation;")
	fmt.Println("offload moves the bottleneck to the PCIe root complex; clustering the")
	fmt.Println("datapath inside train boxes removes the host from the loop entirely.")
}
