// rackscale walks through deploying rack-scale TrainBox (Figure 18) for
// a concrete job: it builds the clustered topology, runs the train
// initializer (data distribution, dummy-batch measurement, prep-pool
// sizing — Section V-A), prints the per-box allocation, and contrasts an
// image job that is self-sufficient with an audio job that draws on the
// pool.
package main

import (
	"flag"
	"fmt"
	"log"

	"trainbox/internal/arch"
	"trainbox/internal/core"
	"trainbox/internal/report"
	"trainbox/internal/workload"
)

func main() {
	demo := flag.Bool("demo", false, "short CI budget: fewer keys, smaller sweep")
	flag.Parse()
	numKeys, sweep := 4096, []int{8, 16, 32, 64, 128, 256}
	if *demo {
		numKeys, sweep = 512, []int{8, 16, 32, 64}
	}
	sys, err := arch.Build(arch.Config{Kind: arch.TrainBox, NumAccels: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rack: %d train boxes — per box %d accels, %d FPGAs, %d SSDs; pool of %d FPGAs\n",
		len(sys.Boxes), len(sys.Boxes[0].Accels), len(sys.Boxes[0].FPGAs),
		len(sys.Boxes[0].SSDs), sys.Config.PoolFPGAs)
	fmt.Printf("PCIe nodes: %d; every in-box datapath avoids the root complex: %v\n\n",
		sys.Topo.NumNodes(), verifyLocality(sys))

	// Fake dataset keys: the initializer only needs names to shard.
	keys := make([]string, numKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("item-%05d", i)
	}

	for _, name := range []string{"Inception-v4", "TF-SR"} {
		w, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := core.InitializeTraining(sys, w, keys)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- %s --\n", name)
		fmt.Printf("  per-batch time %.3f s → required prep %.0f samples/s; feasible: %v\n",
			plan.BatchTime, float64(plan.RequiredPrepRate), plan.Feasible)
		alloc := plan.PerBox[0]
		fmt.Printf("  per box: in-box %.0f samples/s + pool %.0f (%.0f%% extra FPGA resources, %d devices)\n",
			float64(alloc.InBoxRate), float64(alloc.PoolRate),
			100*alloc.ExtraResourceFraction, alloc.PoolFPGAs)
		res, err := core.Solve(sys, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  solved throughput: %.0f samples/s (bottleneck: %s)\n\n",
			float64(res.Throughput), res.Bottleneck)
	}

	// Sweep rack sizes to show scale-up behaviour.
	t := report.NewTable("TrainBox scale-up (Inception-v4)",
		"accelerators", "boxes", "throughput (samples/s)", "accel-equivalents")
	w, _ := workload.ByName("Inception-v4")
	for _, n := range sweep {
		s, err := arch.Build(arch.Config{Kind: arch.TrainBox, NumAccels: n})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Solve(s, w)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRowf(n, len(s.Boxes), float64(res.Throughput),
			float64(res.Throughput)/float64(w.AccelRate))
	}
	fmt.Println(t.String())
}

// verifyLocality checks the clustering invariant on the built rack.
func verifyLocality(sys *arch.System) bool {
	for _, g := range sys.Boxes {
		for _, ssd := range g.SSDs {
			for _, fp := range g.FPGAs {
				if sys.Topo.RouteCrossesRoot(ssd, fp) {
					return false
				}
			}
		}
		for _, fp := range g.FPGAs {
			for _, acc := range g.Accels {
				if sys.Topo.RouteCrossesRoot(fp, acc) {
					return false
				}
			}
		}
	}
	return true
}
