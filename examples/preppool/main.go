// preppool demonstrates the live prep-pool runtime (Section V-D): two
// concurrent training jobs draw preparation capacity from one shared
// pool of FPGA devices. Job "alpha" starts hungry and "beta" modest;
// mid-run their demands cross over, and the rebalancer migrates pooled
// leases from alpha to beta at the next epoch boundary — no job
// restarts, no dropped samples, and every epoch stays bit-identical to
// a host-only run because sample augmentation is seeded per sample, not
// per device. An Ethernet fabric budget gates every lease grant.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"trainbox/internal/dataprep"
	"trainbox/internal/eth"
	"trainbox/internal/fpga"
	"trainbox/internal/metrics"
	"trainbox/internal/nvme"
	"trainbox/internal/preppool"
	"trainbox/internal/report"
	"trainbox/internal/storage"
	"trainbox/internal/units"
)

func main() {
	demo := flag.Bool("demo", false, "short CI budget: fewer items and epochs")
	flag.Parse()
	items, epochs := 16, 8
	if *demo {
		items, epochs = 8, 6
	}

	// One shared dataset on one store; each job re-augments it under its
	// own dataset seed, exactly as two tenants sharing a corpus would.
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store, items, 4, 7); err != nil {
		log.Fatal(err)
	}
	ns, err := nvme.LoadStore(store)
	if err != nil {
		log.Fatal(err)
	}
	imgCfg := dataprep.DefaultImageConfig()
	imgCfg.CropW, imgCfg.CropH = 32, 32

	// Four pooled FPGA devices behind a 4-port 100GbE fabric; each lease
	// must reserve its preparation bandwidth before it is granted.
	const devices = 4
	handlers := make([]*fpga.P2PHandler, devices)
	for i := range handlers {
		if handlers[i], err = fpga.NewP2PHandler(ns, fpga.NewImageEmulator(imgCfg), 8); err != nil {
			log.Fatal(err)
		}
	}
	net, err := eth.NewNetwork(eth.Link100G, eth.SwitchSpec{Ports: 4})
	if err != nil {
		log.Fatal(err)
	}
	reg := metrics.NewRegistry()
	pool, err := preppool.NewPool(handlers,
		preppool.WithMetrics(reg),
		preppool.WithNetwork(net, units.Bytes(64*units.KB)))
	if err != nil {
		log.Fatal(err)
	}

	high := units.SamplesPerSec(3 * fpga.ImagePrepRate)
	low := units.SamplesPerSec(1 * fpga.ImagePrepRate)
	register := func(name string, rate units.SamplesPerSec, seed int64) *preppool.Job {
		j, err := pool.Register(preppool.JobSpec{
			Name: name, RequiredRate: rate,
			Exec:        dataprep.NewExecutor(dataprep.ImagePreparer{Config: imgCfg}, 2, seed),
			Store:       store,
			DatasetSeed: seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		return j
	}
	alpha := register("alpha", high, 7)
	beta := register("beta", low, 8)
	fmt.Printf("pool: %d FPGAs, fabric %v; alpha needs %.0f samples/s, beta %.0f\n\n",
		devices, net.Capacity(), float64(high), float64(low))

	t := report.NewTable("lease ledger per epoch (demand crossover at epoch "+fmt.Sprint(epochs/2)+")",
		"epoch", "job", "required (samples/s)", "leases", "pooled share", "migrations")
	ctx := context.Background()
	for epoch := 0; epoch < epochs; epoch++ {
		if epoch == epochs/2 {
			if err := alpha.SetRequiredRate(low); err != nil {
				log.Fatal(err)
			}
			if err := beta.SetRequiredRate(high); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("epoch %d: demands swapped — alpha %.0f, beta %.0f samples/s\n",
				epoch, float64(low), float64(high))
		}
		for _, job := range []*preppool.Job{alpha, beta} {
			if _, err := job.PrepareEpoch(ctx, store.Keys(), epoch); err != nil {
				log.Fatal(err)
			}
		}
		for _, st := range pool.Stats() {
			t.AddRowf(epoch, st.Name, float64(st.RequiredRate), st.Leases,
				fmt.Sprintf("%.0f%%", 100*st.PooledShare), pool.Migrations())
		}
	}
	fmt.Println()
	fmt.Println(t.String())

	snap := reg.Snapshot()
	fmt.Printf("pooled vs in-box samples: alpha %d/%d, beta %d/%d\n",
		snap.Counters["preppool.job.alpha.pooled_samples"],
		snap.Counters["preppool.job.alpha.inbox_samples"],
		snap.Counters["preppool.job.beta.pooled_samples"],
		snap.Counters["preppool.job.beta.inbox_samples"])
	fmt.Printf("lease migrations: %d; rebalances: %d; fabric reserved at end: %v\n",
		pool.Migrations(), snap.Counters["preppool.pool.rebalances"], net.Reserved())
	if pool.Migrations() == 0 {
		log.Fatal("expected the demand crossover to migrate at least one lease")
	}
}
