// serve demonstrates the multi-tenant training front-end end to end,
// in process: a server over a pooled training backend, three tenants
// with different priorities and appetites, one of them greedy enough to
// trip admission control. The walkthrough shows the full lifecycle —
// submit, fair-share dispatch, a cancellation, an overload shed with
// its Retry-After hint — and closes by printing the per-tenant metric
// namespaces the server maintains.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"trainbox/internal/metrics"
	"trainbox/internal/serve"
)

func main() {
	demo := flag.Bool("demo", false, "short CI budget: smaller corpus and jobs")
	flag.Parse()
	corpus, items, epochs := 32, 16, 2
	if *demo {
		corpus, items, epochs = 16, 8, 1
	}

	reg := metrics.NewRegistry()
	runner, pool, err := serve.NewTrainBackend(2, corpus, 11, reg)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.NewServer(
		serve.WithRunner(runner),
		serve.WithPool(pool),
		serve.WithMetrics(reg),
		serve.WithMaxRunning(2),
		serve.WithTenantQuota(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// Three tenants: vip runs at priority 5, alice and bob at the
	// default. bob over-submits past his quota to show a shed.
	spec := serve.JobSpec{Items: items, Epochs: epochs, RequiredRate: 8000}
	var watch []string
	for _, sub := range []struct {
		tenant string
		prio   int
	}{
		{"alice", 0}, {"bob", 0}, {"vip", 5}, {"bob", 0},
	} {
		s := spec
		s.Tenant, s.Priority = sub.tenant, sub.prio
		inf, err := srv.Submit(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("submitted %-4s → %s (priority %d, state %s)\n", sub.tenant, inf.ID, sub.prio, inf.State)
		watch = append(watch, inf.ID)
	}

	// bob's third live job crosses his quota: the server sheds it with
	// a Retry-After hint instead of queueing it.
	over := spec
	over.Tenant = "bob"
	if _, err := srv.Submit(over); err != nil {
		fmt.Printf("overload: %v\n", err)
	}

	// Cancel bob's second job while it queues or runs.
	if err := srv.Cancel(watch[3]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cancelled %s\n", watch[3])

	for _, id := range watch {
		inf := await(srv, id)
		if inf.Outcome != nil {
			fmt.Printf("%-5s %-6s %-10s loss %.3f, %d samples in %.0fms\n",
				id, inf.Tenant, inf.State, inf.Outcome.FinalLoss, inf.Outcome.Samples, inf.Outcome.ElapsedMs)
		} else {
			fmt.Printf("%-5s %-6s %-10s (%s)\n", id, inf.Tenant, inf.State, inf.Error)
		}
	}

	// The per-tenant namespaces the front-end maintains.
	snap := reg.Snapshot()
	var names []string
	for name := range snap.Counters {
		if strings.HasPrefix(name, "serve.tenant.") && snap.Counters[name] > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Println("tenant metrics:")
	for _, name := range names {
		fmt.Printf("  %-36s %d\n", name, snap.Counters[name])
	}
}

func await(srv *serve.Server, id string) serve.Info {
	for {
		inf, err := srv.Status(id)
		if err != nil {
			log.Fatal(err)
		}
		if inf.State.Terminal() {
			return inf
		}
		time.Sleep(5 * time.Millisecond)
	}
}
