// imagepipeline runs the real image data-preparation library end to end:
// it builds a synthetic JPEG dataset, prepares augmented batches on the
// CPU path and on the FPGA emulator (verifying bit-equality — the
// offload-correctness property), then reproduces the Figure 5
// augmentation study with the small from-scratch neural network.
package main

import (
	"flag"
	"fmt"
	"log"

	"trainbox/internal/dataprep"
	"trainbox/internal/experiments"
	"trainbox/internal/fpga"
	"trainbox/internal/storage"
)

func main() {
	demo := flag.Bool("demo", false, "short CI budget: smaller dataset and study")
	flag.Parse()

	// 1. Build a labelled synthetic JPEG dataset (the Imagenet stand-in).
	store := storage.NewStore(storage.DefaultSSDSpec())
	items := 24
	if *demo {
		items = 8
	}
	if err := dataprep.BuildImageDataset(store, items, 10, 7); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d JPEGs, %v stored (mean %v/item)\n",
		store.Len(), store.UsedBytes(), store.MeanObjectSize())

	// 2. Prepare one augmented batch on the CPU path.
	cfg := dataprep.DefaultImageConfig()
	exec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 0, 7)
	batch, err := exec.PrepareBatch(store, store.Keys(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared %d samples → %dx%dx%d float32 tensors (%d bytes each)\n",
		len(batch), batch[0].Image.C, batch[0].Image.H, batch[0].Image.W, batch[0].Image.Bytes())
	for _, s := range exec.Stats() {
		fmt.Printf("  stage %v\n", s)
	}

	// 3. Offload-correctness: the FPGA emulator must match bit-for-bit.
	emu := fpga.NewImageEmulator(cfg)
	mismatches := 0
	for _, key := range store.Keys() {
		obj, err := store.Get(key)
		if err != nil {
			log.Fatal(err)
		}
		seed := dataprep.SampleSeed(7, key, 0)
		cpuOut := dataprep.ImagePreparer{Config: cfg}.Prepare(obj, seed)
		devOut := emu.Prepare(obj, seed)
		for i := range cpuOut.Image.Data {
			if cpuOut.Image.Data[i] != devOut.Image.Data[i] {
				mismatches++
				break
			}
		}
	}
	fmt.Printf("CPU vs FPGA-emulator bit-equality: %d mismatches across %d samples\n\n",
		mismatches, store.Len())

	// 4. The Figure 5 study: augmentation vs held-out accuracy.
	fig5Cfg := experiments.DefaultFig5Config()
	if *demo {
		fig5Cfg.TrainPerClass, fig5Cfg.TestPerClass, fig5Cfg.Epochs = 8, 8, 6
	}
	res, err := experiments.Fig5(fig5Cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table.String())
	fmt.Printf("final accuracy: %.1f%% with augmentation vs %.1f%% without (+%.1f points)\n",
		100*res.FinalWith, 100*res.FinalWithout, 100*(res.FinalWith-res.FinalWithout))
	fmt.Println("(the paper reports a 29.1-point gap on ResNet-50/Imagenet — Figure 5)")
}
