// dscache demonstrates the shared decode-cache tier and data echoing:
// four training jobs consume one corpus through one cache, so each
// JPEG is decoded once (single-flight) and every job runs only its own
// seeded augmentation — bit-identically to the uncached path. A
// tight-budget run shows CLOCK eviction re-decoding, and an echoed run
// shows prep-bound epochs feeding extra optimizer steps from the same
// prepared batches.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"

	"trainbox/internal/dataprep"
	"trainbox/internal/dscache"
	"trainbox/internal/experiments"
	"trainbox/internal/metrics"
	"trainbox/internal/storage"
	"trainbox/internal/train"
	"trainbox/internal/units"
)

func feature(p dataprep.Prepared) ([]float64, int, error) {
	ten := p.Image
	const block = 4
	side := ten.W / block
	feat := make([]float64, side*side)
	for by := 0; by < side; by++ {
		for bx := 0; bx < side; bx++ {
			var sum float64
			for y := by * block; y < (by+1)*block; y++ {
				for x := bx * block; x < (bx+1)*block; x++ {
					sum += float64(ten.At(0, y, x))
				}
			}
			feat[by*side+bx] = sum / (block * block)
		}
	}
	return feat, p.Label, nil
}

func main() {
	demo := flag.Bool("demo", false, "short CI budget: skip the full study sweep")
	flag.Parse()

	const (
		items   = 8
		classes = 4
		epochs  = 3
		jobs    = 4
	)
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store, items, classes, 7); err != nil {
		log.Fatal(err)
	}
	keys := store.Keys()
	cfg := dataprep.DefaultImageConfig()
	cfg.CropW, cfg.CropH = 32, 32
	trainCfg := func(seed int64, reg *metrics.Registry) train.Config {
		return train.Config{
			Replicas: 2, Widths: []int{64, 16, classes}, Epochs: epochs,
			LearningRate: 0.05, PrefetchDepth: 1, Seed: seed, Metrics: reg,
		}
	}

	// Oracle: job 0 without the cache. The cached run must match it
	// byte for byte — the tier caches the decode, and augmentation is
	// seeded after it.
	exec0 := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 2, 100)
	oracle, err := train.Run(context.Background(), trainCfg(9, nil),
		train.WithDataset(exec0, store, keys), train.WithFeature(feature))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d jobs × %d epochs over %d objects through one shared tier:\n\n", jobs, epochs, items)
	c := dscache.New(64 * units.MB)
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		losses = make([]float64, jobs)
	)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			exec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 2, int64(100+w))
			r, err := train.Run(context.Background(), trainCfg(int64(9+w), nil),
				train.WithDataset(exec, store, keys),
				train.WithCache(c),
				train.WithFeature(feature))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				log.Fatal(err)
			}
			losses[w] = r.FinalLoss()
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	fmt.Printf("  decodes (misses) %d — one per object, not %d (jobs × epochs × objects)\n",
		s.Misses, jobs*epochs*items)
	fmt.Printf("  hits %d, single-flight waits %d, resident %s in %d entries\n",
		s.Hits, s.SingleflightWaits, units.Bytes(s.BytesResident), s.Entries)
	fmt.Printf("  job 0 final loss %.9f, uncached oracle %.9f (bit-identical: %v)\n\n",
		losses[0], oracle.FinalLoss(), losses[0] == oracle.FinalLoss())

	// A budget far below the working set forces CLOCK eviction: the
	// tier keeps deduplicating concurrent decodes but re-decodes what
	// it had to drop.
	tight := dscache.New(24 * units.KB)
	exec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 2, 100)
	if _, err := train.Run(context.Background(), trainCfg(9, nil),
		train.WithDataset(exec, store, keys),
		train.WithCache(tight), train.WithFeature(feature)); err != nil {
		log.Fatal(err)
	}
	ts := tight.Stats()
	fmt.Printf("under a 24 KB budget the same job decodes %d times (evictions %d) — the budget is the knob\n\n",
		ts.Misses, ts.Evictions)

	// Data echoing: replay each prepared batch for extra optimizer
	// steps when preparation is the bottleneck.
	reg := metrics.NewRegistry()
	execEcho := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 2, 100)
	r, err := train.Run(context.Background(), trainCfg(9, reg),
		train.WithDataset(execEcho, store, keys),
		train.WithEchoFactor(2), train.WithFeature(feature))
	if err != nil {
		log.Fatal(err)
	}
	snap := reg.Snapshot()
	fmt.Printf("echo factor 2: %d optimizer steps from %d prepared epochs (%d replays), %d samples seen\n\n",
		len(r.Steps), epochs, snap.Counters["train.driver.echo_replays"], r.SamplesProcessed)

	if *demo {
		return
	}
	res, err := experiments.CacheStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table.String())
	fmt.Printf("headline: 4 consumers amortize %d decodes to %d (%.1f×)\n",
		res.UncachedDecodes, res.CachedDecodes, res.Amortization)
}
