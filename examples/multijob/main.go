// multijob demonstrates the shared prep-pool across training jobs
// (Section V-D: the pool can be disaggregated FPGA racks or FPGAs from
// underutilized train boxes): three jobs with different input types and
// demands compete for a shrinking pool, scheduled max-min fairly on the
// fraction of each job's deficit covered.
package main

import (
	"flag"
	"fmt"
	"log"

	"trainbox/internal/experiments"
	"trainbox/internal/fpga"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

func main() {
	demo := flag.Bool("demo", false, "short CI budget: skip the ablation sweep")
	flag.Parse()
	// Three concurrent jobs on one TrainBox rack, four boxes each.
	jobs := []fpga.JobRequest{
		{Name: "Resnet-50", Type: workload.Image,
			RequiredRate: units.SamplesPerSec(32 * 7431), InBoxRate: 8 * fpga.ImagePrepRate},
		{Name: "TF-SR", Type: workload.Audio,
			RequiredRate: units.SamplesPerSec(32 * 2001), InBoxRate: 8 * fpga.AudioPrepRate},
		{Name: "Inception-v4", Type: workload.Image,
			RequiredRate: units.SamplesPerSec(32 * 1669), InBoxRate: 8 * fpga.ImagePrepRate},
	}
	fmt.Println("jobs sharing one prep-pool (each owns 4 train boxes, 8 in-box FPGAs):")
	for _, j := range jobs {
		fmt.Printf("  %-13s needs %8.0f samples/s, own FPGAs supply %8.0f (deficit %.2f FPGA-equivalents)\n",
			j.Name, float64(j.RequiredRate), float64(j.InBoxRate), j.DeficitFPGAs())
	}
	fmt.Println()

	for _, pool := range []int{32, 12, 4} {
		allocs, err := fpga.SchedulePool(jobs, pool)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pool = %d FPGAs (%.2f used):\n", pool, fpga.PoolUtilization(allocs))
		for _, a := range allocs {
			fmt.Printf("  %-13s granted %5.2f FPGAs → +%8.0f samples/s (%.0f%% of deficit, satisfied=%v)\n",
				a.Name, a.GrantedFPGAs, float64(a.GrantedRate), 100*a.Fraction, a.Satisfied)
		}
		fmt.Println()
	}

	if *demo {
		return
	}
	tb, err := experiments.AblationPoolSharing()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tb.String())
}
