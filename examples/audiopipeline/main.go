// audiopipeline runs the real audio front-end the paper's audio FPGA
// engine implements (Table III): synthetic Librispeech-like PCM streams
// → noise augmentation → STFT → Mel filterbank → log compression →
// SpecAugment masking → normalization, and prints the resulting feature
// geometry and the data-amplification factors the resource model relies
// on.
package main

import (
	"flag"
	"fmt"
	"log"

	"trainbox/internal/dataprep"
	"trainbox/internal/dsp"
	"trainbox/internal/report"
	"trainbox/internal/storage"
)

func main() {
	demo := flag.Bool("demo", false, "short CI budget: fewer utterances")
	flag.Parse()
	items := 6
	if *demo {
		items = 2
	}
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildAudioDataset(store, items, 4, 3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d PCM streams of ~6.96 s, %v stored (mean %v/item)\n",
		store.Len(), store.UsedBytes(), store.MeanObjectSize())

	cfg := dataprep.DefaultAudioConfig()
	exec := dataprep.NewExecutor(dataprep.AudioPreparer{Config: cfg}, 0, 3)
	batch, err := exec.PrepareBatch(store, store.Keys(), 0)
	if err != nil {
		log.Fatal(err)
	}
	mel := batch[0].Audio
	fmt.Printf("log-Mel features: %d frames × %d channels per utterance\n", mel.Frames, mel.Bins)
	for _, s := range exec.Stats() {
		fmt.Printf("  stage %v\n", s)
	}
	fmt.Println()

	// Show the intermediate amplification the paper attributes memory
	// pressure to ("amplified data size due to ... SFFT").
	obj, err := store.Get(store.Keys()[0])
	if err != nil {
		log.Fatal(err)
	}
	signal, err := dsp.PCM16Decode(obj.Data)
	if err != nil {
		log.Fatal(err)
	}
	power, err := dsp.PowerSTFT(signal, cfg.Mel.STFT)
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("Per-utterance data volumes along the audio pipeline",
		"stage", "elements", "bytes (float32)")
	t.AddRowf("stored PCM16", len(signal), len(obj.Data))
	t.AddRowf("waveform", len(signal), 4*len(signal))
	t.AddRowf("power spectrogram", power.Frames*power.Bins, 4*power.Frames*power.Bins)
	t.AddRowf("log-Mel", mel.Frames*mel.Bins, 4*mel.Frames*mel.Bins)
	fmt.Println(t.String())

	// SpecAugment mask coverage: re-prepare without normalization so the
	// masked cells keep their fill value (0) and can be counted.
	rawCfg := cfg
	rawCfg.Normalize = false
	rawOut := dataprep.AudioPreparer{Config: rawCfg}.Prepare(obj, dataprep.SampleSeed(3, obj.Key, 0))
	if rawOut.Err != nil {
		log.Fatal(rawOut.Err)
	}
	masked := 0
	for _, v := range rawOut.Audio.Data {
		if v == 0 {
			masked++
		}
	}
	fmt.Printf("SpecAugment masked %.1f%% of the first utterance's cells\n",
		100*float64(masked)/float64(len(rawOut.Audio.Data)))
	fmt.Println("(time and frequency masking per SpecAugment; widths are random per sample)")
}
