// distributed runs the whole functional stack end to end: Figure 1 as
// working code. Synthetic JPEGs stream from the shard store through the
// data-preparation library with next-batch prefetching; four
// data-parallel replicas of the small network backpropagate their shards
// in parallel; the real chunked ring all-reduce synchronizes gradients;
// and one synchronous SGD step applies everywhere. The run reports loss,
// replica synchronization, and where time went.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"trainbox/internal/dataprep"
	"trainbox/internal/storage"
	"trainbox/internal/train"
)

// stripeFeature pools the tensor's first channel into coarse features.
func stripeFeature(p dataprep.Prepared) ([]float64, int, error) {
	ten := p.Image
	const block = 4
	side := ten.W / block
	feat := make([]float64, side*side)
	for by := 0; by < side; by++ {
		for bx := 0; bx < side; bx++ {
			var sum float64
			for y := by * block; y < (by+1)*block; y++ {
				for x := bx * block; x < (bx+1)*block; x++ {
					sum += float64(ten.At(0, y, x))
				}
			}
			feat[by*side+bx] = sum / (block * block)
		}
	}
	return feat, p.Label, nil
}

func main() {
	demo := flag.Bool("demo", false, "short CI budget: fewer items and epochs")
	flag.Parse()
	items, epochs := 32, 10
	if *demo {
		items, epochs = 16, 3
	}

	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store, items, 4, 11); err != nil {
		log.Fatal(err)
	}
	cfg := dataprep.DefaultImageConfig()
	cfg.CropW, cfg.CropH = 32, 32
	exec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 0, 11)

	tc := train.Config{
		Replicas: 4,
		Widths:   []int{64, 24, 4},
		Epochs:   epochs, LearningRate: 0.08, PrefetchDepth: 2, Seed: 11,
	}
	fmt.Printf("training: %d replicas, %d epochs over %d samples, prefetch depth %d\n",
		tc.Replicas, tc.Epochs, store.Len(), tc.PrefetchDepth)

	res, err := train.Run(context.Background(), tc,
		train.WithDataset(exec, store, store.Keys()),
		train.WithFeature(stripeFeature))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nprocessed %d samples in %v (%.0f samples/s end to end)\n",
		res.SamplesProcessed, res.Elapsed.Round(1e6),
		float64(res.SamplesProcessed)/res.Elapsed.Seconds())
	fmt.Printf("loss: %.3f (first step) → %.3f (last step)\n",
		res.Steps[0].MeanLoss, res.FinalLoss())
	fmt.Printf("replica divergence after training: %.2e (synchronized SGD)\n",
		train.MaxReplicaDivergence(res.Replicas))

	var syncTotal int64
	for _, s := range res.Steps {
		syncTotal += s.SyncNanos
	}
	fmt.Printf("ring all-reduce time: %.2f ms total across %d steps\n",
		float64(syncTotal)/1e6, len(res.Steps))
	fmt.Println("\n(the ring, the prefetcher, and the replicas are the same code the")
	fmt.Println(" system model abstracts — Figure 1 running for real)")
}
