// Integration test for the repo-wide metric naming scheme: drive every
// metered subsystem — storage with faults and retries, the host
// executor, the prefetcher, pooled FPGA devices, the prep-pool runtime,
// and the training driver — into ONE shared registry, then assert that
// every name in the final snapshot follows subsystem.object.metric
// (metrics.ValidName).
package trainbox_test

import (
	"context"
	"testing"

	"trainbox/internal/dataprep"
	"trainbox/internal/faults"
	"trainbox/internal/fpga"
	"trainbox/internal/metrics"
	"trainbox/internal/nvme"
	"trainbox/internal/preppool"
	"trainbox/internal/storage"
	"trainbox/internal/train"
)

func poolFeature(p dataprep.Prepared) ([]float64, int, error) {
	ten := p.Image
	const block = 4
	side := ten.W / block
	feat := make([]float64, side*side)
	for by := 0; by < side; by++ {
		for bx := 0; bx < side; bx++ {
			var sum float64
			for y := by * block; y < (by+1)*block; y++ {
				for x := bx * block; x < (bx+1)*block; x++ {
					sum += float64(ten.At(0, y, x))
				}
			}
			feat[by*side+bx] = sum / (block * block)
		}
	}
	return feat, p.Label, nil
}

func TestAllExportedMetricNamesFollowScheme(t *testing.T) {
	const seed = 5
	reg := metrics.NewRegistry()

	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store, 8, 4, seed); err != nil {
		t.Fatal(err)
	}
	store.WithMetrics(reg).WithFaults(faults.Metered(faults.NewErrorRate(7, 0.1, nil), reg)).
		WithRetry(faults.RetryPolicy{MaxAttempts: 4, Seed: 8})

	imgCfg := dataprep.DefaultImageConfig()
	imgCfg.CropW, imgCfg.CropH = 32, 32
	exec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: imgCfg}, 2, seed).WithMetrics(reg)

	// Prefetcher series.
	pf, err := dataprep.NewPrefetcher(exec, store, store.Keys(), 2, dataprep.WithDepth(2), dataprep.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := pf.Next(); err != nil {
			if err != dataprep.ErrExhausted {
				t.Fatal(err)
			}
			break
		}
	}
	pf.Close()

	// Pooled devices, the prep-pool runtime, and the training driver.
	ns, err := nvme.LoadStore(store)
	if err != nil {
		t.Fatal(err)
	}
	handlers := make([]*fpga.P2PHandler, 2)
	for i := range handlers {
		h, err := fpga.NewP2PHandler(ns, fpga.NewImageEmulator(imgCfg), 8, fpga.WithMetrics(reg))
		if err != nil {
			t.Fatal(err)
		}
		handlers[i] = h
	}
	pool, err := preppool.NewPool(handlers, preppool.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	job, err := pool.Register(preppool.JobSpec{
		Name: "naming", Type: 0, RequiredRate: 16000,
		Exec:        exec,
		Store:       store,
		DatasetSeed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Run(context.Background(), train.Config{
		Replicas: 2, Widths: []int{64, 16, 4}, Epochs: 2,
		LearningRate: 0.05, PrefetchDepth: 1, Seed: 9, Metrics: reg,
	},
		train.WithPreparer(job.Preparer(store.Keys()), store.Len()),
		train.WithFeature(poolFeature)); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	names := snap.Names()
	if len(names) < 25 {
		t.Fatalf("only %d metric names exported — the fixture is not exercising the stack", len(names))
	}
	for _, name := range names {
		if !metrics.ValidName(name) {
			t.Errorf("metric %q does not follow subsystem.object.metric", name)
		}
	}
}
