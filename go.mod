module trainbox

go 1.22
