// Command trainbox-train runs the functional end-to-end training stack
// (Figure 1 as working code): synthetic JPEGs stream through the
// data-preparation library with next-batch prefetching into data-parallel
// replicas synchronized by the real ring all-reduce.
//
//	trainbox-train -replicas 4 -epochs 10 -items 32
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"trainbox/internal/dataprep"
	"trainbox/internal/storage"
	"trainbox/internal/train"
)

func main() {
	replicas := flag.Int("replicas", 4, "data-parallel model replicas")
	epochs := flag.Int("epochs", 10, "training epochs")
	items := flag.Int("items", 32, "synthetic dataset items")
	lr := flag.Float64("lr", 0.08, "learning rate")
	momentum := flag.Float64("momentum", 0.9, "SGD momentum")
	depth := flag.Int("prefetch", 2, "next-batch prefetch depth")
	seed := flag.Int64("seed", 11, "run seed")
	flag.Parse()

	if err := run(*replicas, *epochs, *items, *depth, *lr, *momentum, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "trainbox-train:", err)
		os.Exit(1)
	}
}

// feature pools the prepared tensor's first channel into coarse inputs.
func feature(p dataprep.Prepared) ([]float64, int, error) {
	ten := p.Image
	const block = 4
	side := ten.W / block
	feat := make([]float64, side*side)
	for by := 0; by < side; by++ {
		for bx := 0; bx < side; bx++ {
			var sum float64
			for y := by * block; y < (by+1)*block; y++ {
				for x := bx * block; x < (bx+1)*block; x++ {
					sum += float64(ten.At(0, y, x))
				}
			}
			feat[by*side+bx] = sum / (block * block)
		}
	}
	return feat, p.Label, nil
}

func run(replicas, epochs, items, depth int, lr, momentum float64, seed int64) error {
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store, items, 4, seed); err != nil {
		return err
	}
	cfg := dataprep.DefaultImageConfig()
	cfg.CropW, cfg.CropH = 32, 32
	exec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 0, seed)

	tc := train.Config{
		Replicas: replicas, Widths: []int{64, 24, 4},
		Epochs: epochs, LearningRate: lr, Momentum: momentum,
		PrefetchDepth: depth, Seed: seed,
	}
	fmt.Printf("training %d replicas × %d epochs over %d items (prefetch %d)\n",
		replicas, epochs, items, depth)
	res, err := train.Run(context.Background(), tc,
		train.WithDataset(exec, store, store.Keys()),
		train.WithFeature(feature))
	if err != nil {
		return err
	}
	fmt.Printf("loss %.3f → %.3f over %d steps; %d samples in %v (%.0f samples/s)\n",
		res.Steps[0].MeanLoss, res.FinalLoss(), len(res.Steps),
		res.SamplesProcessed, res.Elapsed.Round(1e6),
		float64(res.SamplesProcessed)/res.Elapsed.Seconds())
	fmt.Printf("replica divergence: %.2e\n", train.MaxReplicaDivergence(res.Replicas))
	return nil
}
