// Command dataprep-prof profiles the real Go data-preparation kernels on
// this machine — the reproduction's analogue of the paper's prototype
// profiling step (Section VI-A). It reports per-sample cost and
// throughput of the image and audio pipelines at several worker counts,
// alongside the calibrated per-sample constants the system model uses.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"trainbox/internal/dataprep"
	"trainbox/internal/report"
	"trainbox/internal/storage"
	"trainbox/internal/workload"
)

func main() {
	items := flag.Int("items", 32, "dataset items per input type")
	samples := flag.Int("samples", 128, "minimum samples to prepare per measurement")
	flag.Parse()

	if err := run(*items, *samples); err != nil {
		fmt.Fprintf(os.Stderr, "dataprep-prof: %v\n", err)
		os.Exit(1)
	}
}

func run(items, samples int) error {
	imgStore := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(imgStore, items, 10, 1); err != nil {
		return err
	}
	audStore := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildAudioDataset(audStore, items/4+1, 10, 1); err != nil {
		return err
	}

	t := report.NewTable("Measured Go kernel throughput (this machine)",
		"pipeline", "workers", "samples/s", "per sample")
	st := report.NewTable("Pipeline stage counters (cumulative per executor)",
		"pipeline", "workers", "stage", "in", "out", "busy")
	workers := []int{1, runtime.GOMAXPROCS(0)}
	for _, wk := range workers {
		e := dataprep.NewExecutor(dataprep.ImagePreparer{Config: dataprep.DefaultImageConfig()}, wk, 1)
		res, err := e.Profile(imgStore, imgStore.Keys(), samples)
		if err != nil {
			return err
		}
		t.AddRowf("image (JPEG→224³ tensor)", wk, res.SamplesPerSec, res.PerSample.String())
		for _, s := range e.Stats() {
			st.AddRowf("image", wk, s.Name, s.ItemsIn, s.ItemsOut, s.Busy.Round(time.Millisecond).String())
		}
	}
	for _, wk := range workers {
		e := dataprep.NewExecutor(dataprep.AudioPreparer{Config: dataprep.DefaultAudioConfig()}, wk, 1)
		res, err := e.Profile(audStore, audStore.Keys(), samples/4+1)
		if err != nil {
			return err
		}
		t.AddRowf("audio (PCM→log-Mel)", wk, res.SamplesPerSec, res.PerSample.String())
		for _, s := range e.Stats() {
			st.AddRowf("audio", wk, s.Name, s.ItemsIn, s.ItemsOut, s.Busy.Round(time.Millisecond).String())
		}
	}
	fmt.Println(t.String())
	fmt.Println(st.String())

	cal := report.NewTable("Calibrated per-sample model constants (DALI-class kernels)",
		"workload", "type", "cpu ms/sample", "stored KB", "tensor KB")
	for _, w := range workload.Workloads() {
		cal.AddRowf(w.Name, w.Type.String(),
			1e3*w.Prep.TotalCPUSeconds(),
			float64(w.Prep.StoredBytes)/1024,
			float64(w.Prep.TensorBytes)/1024)
	}
	fmt.Println(cal.String())
	fmt.Println("Note: the system model uses the calibrated constants (representing optimized")
	fmt.Println("C/CUDA DALI-class kernels), not the raw Go measurements above; see DESIGN.md.")
	return nil
}
