// Command trainbox-serve runs the multi-tenant training front-end:
// tenants POST training jobs to /v1/jobs, the server admits them under
// per-tenant quotas, queues them priority-first with fair-share across
// tenants, runs them on the shared prep-pool, and sheds overload with
// 429 + Retry-After.
//
//	trainbox-serve -devices 4 -max-running 4 -addr 127.0.0.1:8080
//
// With -addr ending in ":0" the kernel picks the port; pass -addr-file
// to have the resolved address written out for scripts (the CI serving
// gate boots the server exactly this way).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"trainbox/internal/metrics"
	"trainbox/internal/serve"
	"trainbox/internal/units"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 = kernel-assigned)")
	addrFile := flag.String("addr-file", "", "write the resolved listen address to this file")
	devices := flag.Int("devices", 4, "pooled preparation devices (0 = host-only preparation)")
	corpus := flag.Int("corpus", 64, "shared corpus size in items")
	seed := flag.Int64("seed", 11, "corpus seed")
	maxRunning := flag.Int("max-running", 4, "concurrent training jobs")
	queueLimit := flag.Int("queue-limit", 64, "queue depth before shedding")
	pressureLimit := flag.Int("pressure-limit", 0, "queue depth before shedding under device pressure (0 = queue-limit/4)")
	quota := flag.Int("tenant-quota", 8, "max live jobs per tenant")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on shed responses")
	cacheMB := flag.Int("cache", 0, "shared decode-cache budget in MB (0 = no cache)")
	sync := flag.String("sync", "", "gradient-sync backend for every job: ring, tree, halving, or ps (empty = driver default ring)")
	flag.Parse()

	if err := run(*addr, *addrFile, *devices, *corpus, *seed, *maxRunning,
		*queueLimit, *pressureLimit, *quota, *cacheMB, *sync, *retryAfter); err != nil {
		fmt.Fprintln(os.Stderr, "trainbox-serve:", err)
		os.Exit(1)
	}
}

func run(addr, addrFile string, devices, corpus int, seed int64,
	maxRunning, queueLimit, pressureLimit, quota, cacheMB int, sync string, retryAfter time.Duration) error {
	reg := metrics.NewRegistry()
	runner, pool, err := serve.NewTrainBackend(devices, corpus, seed, reg)
	if err != nil {
		return err
	}
	if cacheMB > 0 {
		runner.EnableCache(units.Bytes(cacheMB)*units.MB, reg)
	}
	if sync != "" {
		if _, err := runner.EnableSync(sync, reg); err != nil {
			return err
		}
	}
	opts := []serve.Option{
		serve.WithRunner(runner),
		serve.WithMetrics(reg),
		serve.WithMaxRunning(maxRunning),
		serve.WithQueueLimit(queueLimit),
		serve.WithTenantQuota(quota),
		serve.WithRetryAfter(retryAfter),
	}
	if pool != nil {
		opts = append(opts, serve.WithPool(pool))
	}
	if pressureLimit > 0 {
		opts = append(opts, serve.WithPressureLimit(pressureLimit))
	}
	srv, err := serve.NewServer(opts...)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	resolved := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(resolved), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("trainbox-serve listening on %s (%d devices, %d run slots, queue %d, quota %d)\n",
		resolved, devices, maxRunning, queueLimit, quota)

	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("trainbox-serve: %v, draining\n", sig)
	case err := <-errCh:
		_ = srv.Close()
		return err
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	return srv.Close()
}
