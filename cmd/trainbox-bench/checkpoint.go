package main

import (
	"context"
	"fmt"
	"math/rand"

	"trainbox/internal/dataprep"
	"trainbox/internal/nn"
	"trainbox/internal/report"
	"trainbox/internal/storage"
	"trainbox/internal/train"
)

// stepCheckpoint measures the elastic-jobs recovery path: the cost of
// reloading a captured train.Checkpoint into live replicas — the
// defensive clone WithRestore takes plus the weight and optimizer
// velocity reload every resumed run pays before its first epoch. The
// checkpoint comes from a real short training run so the restored state
// shapes match what suspend/resume moves in production; the measured
// round trip lands in the report's latency map as checkpoint_restore_ns
// (lower is better — cmd/benchdiff gates growth against the baseline).
func stepCheckpoint(h *harness) error {
	const (
		items       = 8
		datasetSeed = 1
		crop        = 32
	)
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store, items, 4, datasetSeed); err != nil {
		return err
	}
	imgCfg := dataprep.DefaultImageConfig()
	imgCfg.CropW, imgCfg.CropH = crop, crop
	exec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: imgCfg}, 0, datasetSeed)

	// A two-epoch run with momentum captures exactly one checkpoint
	// (the final epoch is never checkpointed) carrying both weights and
	// optimizer velocity.
	cfg := train.Config{
		Replicas: 2, Widths: []int{64, 16, 4}, Epochs: 2,
		LearningRate: 0.05, Momentum: 0.9, PrefetchDepth: 1, Seed: datasetSeed,
	}
	var cp train.Checkpoint
	captured := false
	if _, err := train.Run(context.Background(), cfg,
		train.WithDataset(exec, store, store.Keys()),
		train.WithFeature(feature),
		train.WithCheckpointEvery(1),
		train.WithCheckpointSink(func(c train.Checkpoint) { cp, captured = c, true }),
	); err != nil {
		return err
	}
	if !captured {
		return fmt.Errorf("checkpoint run captured nothing")
	}

	// The restore targets: replicas and optimizers shaped like the run
	// that resumes from the checkpoint.
	nets := make([]*nn.Network, cfg.Replicas)
	opts := make([]*nn.SGD, cfg.Replicas)
	for i := range nets {
		nets[i] = nn.NewMLP(cfg.Widths, rand.New(rand.NewSource(cfg.Seed)))
		opt, err := nn.NewSGD(cfg.LearningRate, cfg.Momentum, 0)
		if err != nil {
			return err
		}
		opts[i] = opt
	}
	st := measureKernel(func() {
		c := cp.Clone()
		for i := range nets {
			if err := nets[i].SetWeights(c.Replicas[i]); err != nil {
				panic(err)
			}
			if err := opts[i].SetVelocity(nets[i], c.Velocity[i]); err != nil {
				panic(err)
			}
		}
	})
	h.rep.Latency["checkpoint_restore_ns"] = st.NsPerSample

	t := report.NewTable("Checkpoint restore latency (tracked by the CI perf gate)",
		"metric", "ns")
	t.AddRowf("checkpoint_restore_ns", st.NsPerSample)
	h.print(t)
	return nil
}
