package main

import (
	"fmt"
	"testing"
	"time"

	"trainbox/internal/dataprep"
	"trainbox/internal/dscache"
	"trainbox/internal/dsp"
	"trainbox/internal/imgproc"
	"trainbox/internal/jpegdec"
	"trainbox/internal/memframe"
	"trainbox/internal/report"
	"trainbox/internal/storage"
	"trainbox/internal/units"
)

// kernelStat is one per-kernel measurement in the JSON report. Allocs
// per sample is the gated quantity (cmd/benchdiff fails CI on >25%
// growth); ns per sample is informational — wall-clock on shared CI
// runners is too noisy to gate.
type kernelStat struct {
	NsPerSample     float64 `json:"ns_per_sample"`
	AllocsPerSample float64 `json:"allocs_per_sample"`
}

// measureKernel times fn with a doubling loop until it has run for at
// least minKernelDur, and counts steady-state allocations with
// testing.AllocsPerRun (which warms fn once before counting).
func measureKernel(fn func()) kernelStat {
	allocs := testing.AllocsPerRun(10, fn)
	const minKernelDur = 30 * time.Millisecond
	for iters := 1; ; iters *= 2 {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		if el := time.Since(start); el >= minKernelDur || iters >= 1<<20 {
			return kernelStat{
				NsPerSample:     float64(el.Nanoseconds()) / float64(iters),
				AllocsPerSample: allocs,
			}
		}
	}
}

// stepKernels measures the per-kernel cost matrix of the sample path —
// decode, resize, FFT, MFCC, cast, and the end-to-end Prepare* variants
// — recording ns/sample and allocs/sample per kernel. The *_fresh
// entries keep the legacy throwaway paths visible next to the pooled
// scratch paths so the report shows what the zero-allocation refactor
// buys.
func stepKernels(h *harness) error {
	synth := imgproc.DefaultSynthConfig()
	srcImg := imgproc.SynthesizeImage(synth, 1, 3)
	jpegData, err := imgproc.EncodeJPEG(srcImg, synth.Quality)
	if err != nil {
		return err
	}
	audioCfg := dsp.DefaultSynthConfig()
	signal, err := dsp.SynthesizeAudio(audioCfg, 1)
	if err != nil {
		return err
	}
	pcmData := dsp.PCM16Encode(signal)
	imageCfg := dataprep.DefaultImageConfig()
	audioPrep := dataprep.DefaultAudioConfig()

	kernels := map[string]func() (func(), error){
		// JPEG decode on the internal decoder: reused Decoder (the FPGA
		// engine model's steady state) vs a fresh decoder per call.
		"jpeg_decode": func() (func(), error) {
			dec := jpegdec.NewDecoder()
			return func() {
				if _, _, err := dec.Decode(jpegData); err != nil {
					panic(err)
				}
			}, nil
		},
		"jpeg_decode_fresh": func() (func(), error) {
			return func() {
				if _, _, err := jpegdec.Decode(jpegData); err != nil {
					panic(err)
				}
			}, nil
		},
		"resize": func() (func(), error) {
			var dst imgproc.Image
			return func() {
				if err := imgproc.ResizeInto(&dst, srcImg, imgproc.ModelSize, imgproc.ModelSize); err != nil {
					panic(err)
				}
			}, nil
		},
		"fft512": func() (func(), error) {
			plan, err := dsp.NewFFTPlan(512)
			if err != nil {
				return nil, err
			}
			src := make([]complex128, 512)
			for i := range src {
				src[i] = complex(float64(i%101)/101, 0)
			}
			work := make([]complex128, 512)
			return func() {
				copy(work, src)
				if err := plan.Transform(work); err != nil {
					panic(err)
				}
			}, nil
		},
		"mfcc": func() (func(), error) {
			plan, err := dsp.NewMFCCPlan(dsp.DefaultMFCCConfig())
			if err != nil {
				return nil, err
			}
			var out dsp.Spectrogram
			return func() {
				if err := plan.MFCCInto(&out, signal); err != nil {
					panic(err)
				}
			}, nil
		},
		"cast": func() (func(), error) {
			var ten imgproc.Tensor
			return func() {
				if err := imgproc.ToTensorInto(&ten, srcImg, imgproc.ImagenetMean, imgproc.ImagenetStd); err != nil {
					panic(err)
				}
			}, nil
		},
		// End-to-end per-sample preparation: pooled scratch + recycled
		// outputs (steady state) vs the legacy fresh-allocation shim.
		"prepare_image": func() (func(), error) {
			out := memframe.NewSet()
			s := dataprep.NewScratchWithOutput(out)
			return func() {
				t, err := dataprep.PrepareImageScratch(jpegData, imageCfg, 7, s)
				if err != nil {
					panic(err)
				}
				out.F32.Put(t.Data)
			}, nil
		},
		"prepare_image_fresh": func() (func(), error) {
			return func() {
				if _, err := dataprep.PrepareImage(jpegData, imageCfg, 7); err != nil {
					panic(err)
				}
			}, nil
		},
		// Warm shared-cache path: the decode is resident, so each sample
		// pays only the seeded augmentation tail. The gap to
		// prepare_image is what the tier saves per hit.
		"prepare_image_cached": func() (func(), error) {
			c := dscache.New(64 * units.MB)
			prep := dscache.ImagePreparer{Cache: c, Config: imageCfg}
			obj := storage.Object{Key: "bench", Data: jpegData}
			out := memframe.NewSet()
			s := dataprep.NewScratchWithOutput(out)
			if p := prep.PrepareScratch(obj, 7, s); p.Err != nil {
				return nil, p.Err
			} else {
				out.F32.Put(p.Image.Data)
			}
			return func() {
				p := prep.PrepareScratch(obj, 7, s)
				if p.Err != nil {
					panic(p.Err)
				}
				out.F32.Put(p.Image.Data)
			}, nil
		},
		"prepare_audio": func() (func(), error) {
			out := memframe.NewSet()
			s := dataprep.NewScratchWithOutput(out)
			return func() {
				sp, err := dataprep.PrepareAudioScratch(pcmData, audioPrep, 7, s)
				if err != nil {
					panic(err)
				}
				out.F64.Put(sp.Data)
			}, nil
		},
	}

	order := []string{
		"jpeg_decode", "jpeg_decode_fresh", "resize", "fft512", "mfcc", "cast",
		"prepare_image", "prepare_image_cached", "prepare_image_fresh", "prepare_audio",
	}
	t := report.NewTable("Per-kernel sample path (allocs/sample gated by CI)",
		"kernel", "ns/sample", "allocs/sample")
	for _, name := range order {
		fn, err := kernels[name]()
		if err != nil {
			return fmt.Errorf("kernel %s: %w", name, err)
		}
		st := measureKernel(fn)
		h.rep.Kernels[name] = st
		t.AddRowf(name, st.NsPerSample, st.AllocsPerSample)
	}
	h.print(t)
	return nil
}
