// Command trainbox-bench regenerates every table and figure of the
// paper's evaluation in one run and prints a paper-vs-measured summary —
// the data source for EXPERIMENTS.md.
//
// With -json <path> it additionally runs a live throughput harness over
// the real data path (executor, prefetcher, FPGA pool, training driver,
// all reporting into one metrics registry) and writes a
// schema-versioned, machine-readable report: per-experiment measured
// values, tracked throughput numbers, and the full metrics snapshot.
// That file is the BENCH.json artifact the CI perf-regression gate
// (cmd/benchdiff) compares against the committed BENCH_baseline.json.
//
// Output is deterministic and fail-fast: every experiment runs in a
// fixed order into a buffer, and nothing is printed until all of them
// have succeeded; the first failure aborts the run with a non-zero exit
// and no partial tables on stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"trainbox/internal/dataprep"
	"trainbox/internal/experiments"
	"trainbox/internal/fpga"
	"trainbox/internal/metrics"
	"trainbox/internal/nvme"
	"trainbox/internal/report"
	"trainbox/internal/serve"
	"trainbox/internal/storage"
	"trainbox/internal/train"
)

// benchSchema versions the JSON report format. Bump on incompatible
// changes; cmd/benchdiff refuses to compare mismatched major schemas.
// v1.1 adds the per-kernel matrix (ns/sample and allocs/sample per
// sample-path kernel) alongside v1's throughput metrics; v1.2 adds the
// latency map (lower is better — currently the elastic-jobs
// checkpoint-restore round trip); v1.3 adds the dscache map (the shared
// decode-cache tier's directional rows: hit rate and decode
// amortization at 4 concurrent consumers) and the warm cached-prepare
// kernel row; v1.4 adds the sync map (gradient-sync backend rows:
// bit-identity flag, analytical latencies at 256 accels, in-network
// speedup over a host Ethernet ring, and the ring's exact functional
// traffic count).
const benchSchema = "trainbox-bench/v1.4"

var (
	markdown = flag.Bool("md", false, "emit the paper-vs-measured summary as a markdown table")
	jsonPath = flag.String("json", "", "also run the live throughput harness and write a machine-readable BENCH.json to this path")
)

func main() {
	flag.Parse()
	if err := run(*markdown, *jsonPath); err != nil {
		fmt.Fprintf(os.Stderr, "trainbox-bench: %v\n", err)
		os.Exit(1)
	}
}

// experimentValue is one headline number in the JSON report.
type experimentValue struct {
	Experiment string  `json:"experiment"`
	Quantity   string  `json:"quantity"`
	Paper      string  `json:"paper"`
	Measured   float64 `json:"measured"`
	// Display carries non-numeric measured values (e.g. a workload name)
	// verbatim; Measured then holds the associated number if any.
	Display string `json:"display,omitempty"`
}

// benchReport is the schema-versioned artifact `-json` writes.
type benchReport struct {
	Schema      string             `json:"schema"`
	GoVersion   string             `json:"go_version"`
	GOOS        string             `json:"goos"`
	GOARCH      string             `json:"goarch"`
	CPUs        int                `json:"cpus"`
	GeneratedAt string             `json:"generated_at"`
	Experiments []experimentValue  `json:"experiments"`
	Throughput  map[string]float64 `json:"throughput"`
	// Kernels is the per-kernel sample-path matrix; allocs/sample is
	// gated by cmd/benchdiff, ns/sample is informational.
	Kernels map[string]kernelStat `json:"kernels"`
	// Latency holds lower-is-better nanosecond measurements (the
	// checkpoint-restore round trip); cmd/benchdiff gates growth.
	Latency map[string]float64 `json:"latency"`
	// DSCache holds the shared decode-cache tier's rows; each carries
	// its own gate direction so cmd/benchdiff can gate hit-rate drops
	// and decode-count growth with one threshold. The counts are exact
	// (single-flight makes decodes-per-key deterministic), so these rows
	// are immune to CI wall-clock noise.
	DSCache map[string]cacheRow `json:"dscache"`
	// Sync holds the gradient-sync backend rows; like DSCache each row
	// carries its own gate direction (cmd/benchdiff -sync-threshold).
	// Every value is either analytical or an exact counter, so the rows
	// are immune to CI wall-clock noise.
	Sync    map[string]cacheRow `json:"sync"`
	Metrics metrics.Snapshot    `json:"metrics"`
}

// cacheRow is one dscache measurement plus its gate direction.
type cacheRow struct {
	Value          float64 `json:"value"`
	HigherIsBetter bool    `json:"higher_is_better"`
}

// harness accumulates all output in memory so a mid-run failure never
// leaves partial tables on stdout, and the print order is exactly the
// fixed step order.
type harness struct {
	out     strings.Builder
	summary *report.Table
	rep     *benchReport
}

func (h *harness) print(t *report.Table) { h.out.WriteString(t.String() + "\n") }

// record adds one headline number to both the summary table and the
// JSON report.
func (h *harness) record(experiment, quantity, paper string, measured float64) {
	h.summary.AddRowf(experiment, quantity, paper, measured)
	h.rep.Experiments = append(h.rep.Experiments, experimentValue{
		Experiment: experiment, Quantity: quantity, Paper: paper, Measured: measured,
	})
}

// recordDisplay records a headline whose rendering is non-numeric,
// keeping the underlying number machine-readable.
func (h *harness) recordDisplay(experiment, quantity, paper, display string, measured float64) {
	h.summary.AddRowf(experiment, quantity, paper, display)
	h.rep.Experiments = append(h.rep.Experiments, experimentValue{
		Experiment: experiment, Quantity: quantity, Paper: paper, Measured: measured, Display: display,
	})
}

type step struct {
	name string
	fn   func(*harness) error
}

func run(md bool, jsonPath string) error {
	h := &harness{
		summary: report.NewTable("Paper vs measured summary",
			"experiment", "quantity", "paper", "measured"),
		rep: &benchReport{
			Schema:      benchSchema,
			GoVersion:   runtime.Version(),
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			CPUs:        runtime.NumCPU(),
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			Throughput:  map[string]float64{},
			Kernels:     map[string]kernelStat{},
			Latency:     map[string]float64{},
			DSCache:     map[string]cacheRow{},
			Sync:        map[string]cacheRow{},
		},
	}

	steps := []step{
		{"Table I", stepTableI},
		{"Table II", stepTableII},
		{"Table III", stepTableIII},
		{"Fig 2a", stepFig2a},
		{"Fig 2b", stepFig2b},
		{"Fig 3", stepFig3},
		{"Fig 5", stepFig5},
		{"Fig 8", stepFig8},
		{"Fig 9", stepFig9},
		{"Fig 10", stepFig10},
		{"Fig 11", stepFig11},
		{"Fig 19", stepFig19},
		{"Fig 20", stepFig20},
		{"Fig 21", stepFig21},
		{"Fig 22", stepFig22},
	}
	if jsonPath != "" {
		steps = append(steps, step{"kernel matrix", stepKernels},
			step{"checkpoint restore", stepCheckpoint},
			step{"dscache tier", stepDSCache},
			step{"sync backends", stepSync},
			step{"live throughput", stepLiveThroughput})
	}
	for _, s := range steps {
		if err := s.fn(h); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}

	if md {
		h.out.WriteString(h.summary.Markdown())
	} else {
		h.out.WriteString(h.summary.String())
	}
	fmt.Print(h.out.String())

	if jsonPath != "" {
		data, err := json.MarshalIndent(h.rep, "", "  ")
		if err != nil {
			return fmt.Errorf("marshal report: %w", err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
		fmt.Printf("wrote %s (%s, %d experiments, %d tracked throughput metrics, %d kernels, %d latency metrics, %d cache rows, %d sync rows)\n",
			jsonPath, benchSchema, len(h.rep.Experiments), len(h.rep.Throughput), len(h.rep.Kernels), len(h.rep.Latency), len(h.rep.DSCache), len(h.rep.Sync))
	}
	return nil
}

func stepTableI(h *harness) error {
	h.print(experiments.TableI())
	return nil
}

func stepTableII(h *harness) error {
	t, err := experiments.TableII()
	if err != nil {
		return err
	}
	h.print(t)
	return nil
}

func stepTableIII(h *harness) error {
	t, err := experiments.TableIII()
	if err != nil {
		return err
	}
	h.print(t)
	return nil
}

func stepFig2a(h *harness) error {
	h.print(experiments.Fig2a())
	return nil
}

func stepFig2b(h *harness) error {
	f := experiments.Fig2b()
	h.print(f.Table)
	h.record("Fig 2b", "normalized ring latency at n=256", "≈2", f.NormalizedAt256)
	return nil
}

func stepFig3(h *harness) error {
	f, err := experiments.Fig3()
	if err != nil {
		return err
	}
	h.print(f.Table)
	h.record("Fig 3", "prep/others in final config", "54.9×", f.FinalPrepOverOthers)
	return nil
}

func stepFig5(h *harness) error {
	f, err := experiments.Fig5(experiments.DefaultFig5Config())
	if err != nil {
		return err
	}
	h.print(f.Table)
	h.record("Fig 5", "augmentation accuracy gap (points)", "29.1",
		100*(f.FinalWith-f.FinalWithout))
	return nil
}

func stepFig8(h *harness) error {
	f, err := experiments.Fig8()
	if err != nil {
		return err
	}
	h.print(f.Table)
	h.record("Fig 8", "baseline saturation (accel-equivalents)", "≈18", f.MaxSaturation)
	return nil
}

func stepFig9(h *harness) error {
	f, err := experiments.Fig9()
	if err != nil {
		return err
	}
	h.print(f.Table)
	h.record("Fig 9", "mean prep share at 256 accels (%)", "98.1", 100*f.MeanPrepShare)
	return nil
}

func stepFig10(h *harness) error {
	f, err := experiments.Fig10()
	if err != nil {
		return err
	}
	h.print(f.CPU)
	h.print(f.Memory)
	h.print(f.PCIe)
	h.record("Fig 10a", "max CPU requirement (× DGX-2)", "100.7", f.MaxCPU)
	h.record("Fig 10a", "max cores required", "4833", f.MaxCores)
	h.record("Fig 10b", "max memory requirement (× DGX-2)", "17.9", f.MaxMemory)
	h.record("Fig 10c", "max PCIe requirement (× DGX-2)", "18.0", f.MaxPCIe)
	return nil
}

func stepFig11(h *harness) error {
	t, err := experiments.Fig11()
	if err != nil {
		return err
	}
	h.print(t)
	return nil
}

func stepFig19(h *harness) error {
	f, err := experiments.Fig19()
	if err != nil {
		return err
	}
	h.print(f.Table)
	h.record("Fig 19", "avg TrainBox speedup", "44.4×", f.AvgTrainBox)
	h.record("Fig 19", "avg B+Acc speedup", "3.32×", f.AvgAcc)
	h.record("Fig 19", "clustering gain over B+Acc+P2P", "13.4×", f.ClusteringGain)
	h.recordDisplay("Fig 19", "max speedup workload", "TF-AA (84.3×)",
		fmt.Sprintf("%s (%.1f×)", f.MaxName, f.MaxTrainBox), f.MaxTrainBox)
	return nil
}

func stepFig20(h *harness) error {
	f, err := experiments.Fig20()
	if err != nil {
		return err
	}
	h.print(f.Table)
	h.record("Fig 20", "speedup at batch 8192", "≈55×", f.SpeedupAtLargest)
	return nil
}

func stepFig21(h *harness) error {
	for _, wl := range []string{"Inception-v4", "TF-SR"} {
		f, err := experiments.Fig21(wl)
		if err != nil {
			return err
		}
		h.print(f.Table)
		h.record("Fig 21", wl+" TrainBox accel-equivalents", "≈256", f.FinalByConfig["TrainBox"])
	}
	return nil
}

func stepFig22(h *harness) error {
	t, err := experiments.Fig22()
	if err != nil {
		return err
	}
	h.print(t)
	return nil
}

// feature pools the prepared tensor's first channel into coarse inputs
// (the same pooling the training CLI and tests use).
func feature(p dataprep.Prepared) ([]float64, int, error) {
	ten := p.Image
	const block = 4
	side := ten.W / block
	feat := make([]float64, side*side)
	for by := 0; by < side; by++ {
		for bx := 0; bx < side; bx++ {
			var sum float64
			for y := by * block; y < (by+1)*block; y++ {
				for x := bx * block; x < (bx+1)*block; x++ {
					sum += float64(ten.At(0, y, x))
				}
			}
			feat[by*side+bx] = sum / (block * block)
		}
	}
	return feat, p.Label, nil
}

// stepLiveThroughput drives the real data path — host executor,
// prefetcher, FPGA pool, and the end-to-end training driver — against
// one shared metrics registry, and records the tracked throughput
// numbers the CI regression gate compares across commits.
func stepLiveThroughput(h *harness) error {
	const (
		items       = 8
		datasetSeed = 1
		crop        = 32
	)
	reg := metrics.NewRegistry()
	store := storage.NewStore(storage.DefaultSSDSpec()).WithMetrics(reg)
	if err := dataprep.BuildImageDataset(store, items, 4, datasetSeed); err != nil {
		return err
	}
	keys := store.Keys()
	cfg := dataprep.DefaultImageConfig()
	cfg.CropW, cfg.CropH = crop, crop
	exec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 0, datasetSeed).WithMetrics(reg)

	t := report.NewTable("Live throughput (this machine — tracked by the CI perf gate)",
		"metric", "value")

	// Host executor: fetch→prepare pipeline throughput.
	prof, err := exec.Profile(store, keys, 4*items)
	if err != nil {
		return err
	}
	h.rep.Throughput["executor_image_samples_per_sec"] = prof.SamplesPerSec
	t.AddRowf("executor_image_samples_per_sec", prof.SamplesPerSec)

	// Prefetcher: delivered samples/s through the overlap pipeline.
	pf, err := dataprep.NewPrefetcher(exec, store, keys, 4, dataprep.WithDepth(2))
	if err != nil {
		return err
	}
	defer pf.Close()
	start := time.Now()
	delivered := 0
	for {
		batch, err := pf.Next()
		if err != nil {
			if err != dataprep.ErrExhausted {
				return err
			}
			break
		}
		delivered += len(batch.Samples)
	}
	pfRate := float64(delivered) / time.Since(start).Seconds()
	h.rep.Throughput["prefetcher_samples_per_sec"] = pfRate
	t.AddRowf("prefetcher_samples_per_sec", pfRate)

	// FPGA pool: dispatch across two pooled device handlers.
	ns, err := nvme.LoadStore(store)
	if err != nil {
		return err
	}
	h1, err := fpga.NewP2PHandler(ns, fpga.NewImageEmulator(cfg), 8, fpga.WithMetrics(reg))
	if err != nil {
		return err
	}
	h2, err := fpga.NewP2PHandler(ns, fpga.NewImageEmulator(cfg), 8, fpga.WithMetrics(reg))
	if err != nil {
		return err
	}
	cluster, err := fpga.NewCluster([]*fpga.P2PHandler{h1, h2}, fpga.WithMetrics(reg))
	if err != nil {
		return err
	}
	start = time.Now()
	pooled := 0
	for epoch := 0; epoch < 3; epoch++ {
		out, err := cluster.PrepareBatch(context.Background(), keys, datasetSeed, epoch)
		if err != nil {
			return err
		}
		pooled += len(out)
	}
	poolRate := float64(pooled) / time.Since(start).Seconds()
	h.rep.Throughput["fpga_pool_samples_per_sec"] = poolRate
	t.AddRowf("fpga_pool_samples_per_sec", poolRate)

	// End-to-end training driver: steps/s and samples/s with the shared
	// registry observing the whole prepare→extract→step pipeline.
	res, err := train.Run(context.Background(), train.Config{
		Replicas: 2, Widths: []int{64, 16, 4}, Epochs: 3,
		LearningRate: 0.05, PrefetchDepth: 2, Seed: datasetSeed,
		Metrics: reg,
	}, train.WithDataset(exec, store, keys), train.WithFeature(feature))
	if err != nil {
		return err
	}
	trainRate := float64(res.SamplesProcessed) / res.Elapsed.Seconds()
	h.rep.Throughput["train_samples_per_sec"] = trainRate
	t.AddRowf("train_samples_per_sec", trainRate)

	// Serving front-end: admissions/s through the full submit path
	// (validation, quota and queue checks, tenant namespace, fair-share
	// enqueue) with an instant runner so the measurement isolates the
	// front-end, not training.
	srv, err := serve.NewServer(
		serve.WithRunner(serve.RunnerFunc(func(context.Context, string, serve.JobSpec) (serve.Outcome, error) {
			return serve.Outcome{}, nil
		})),
		serve.WithMaxRunning(runtime.NumCPU()),
		serve.WithQueueLimit(1<<20),
		serve.WithTenantQuota(1<<20),
	)
	if err != nil {
		return err
	}
	const submits = 4096
	start = time.Now()
	for i := 0; i < submits; i++ {
		if _, err := srv.Submit(serve.JobSpec{Tenant: fmt.Sprintf("t%d", i%16)}); err != nil {
			return err
		}
	}
	submitRate := submits / time.Since(start).Seconds()
	if err := srv.Close(); err != nil {
		return err
	}
	h.rep.Throughput["serve_submit_per_sec"] = submitRate
	t.AddRowf("serve_submit_per_sec", submitRate)

	h.rep.Metrics = reg.Snapshot()
	h.print(t)
	return nil
}
