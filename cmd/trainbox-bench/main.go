// Command trainbox-bench regenerates every table and figure of the
// paper's evaluation in one run and prints a paper-vs-measured summary —
// the data source for EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"trainbox/internal/experiments"
	"trainbox/internal/report"
)

var markdown = flag.Bool("md", false, "emit the paper-vs-measured summary as a markdown table")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "trainbox-bench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	summary := report.NewTable("Paper vs measured summary",
		"experiment", "quantity", "paper", "measured")

	fmt.Println(experiments.TableI().String())
	t2, err := experiments.TableII()
	if err != nil {
		return err
	}
	fmt.Println(t2.String())
	t3, err := experiments.TableIII()
	if err != nil {
		return err
	}
	fmt.Println(t3.String())

	fmt.Println(experiments.Fig2a().String())

	f2b := experiments.Fig2b()
	fmt.Println(f2b.Table.String())
	summary.AddRowf("Fig 2b", "normalized ring latency at n=256", "≈2", f2b.NormalizedAt256)

	f3, err := experiments.Fig3()
	if err != nil {
		return err
	}
	fmt.Println(f3.Table.String())
	summary.AddRowf("Fig 3", "prep/others in final config", "54.9×", f3.FinalPrepOverOthers)

	f5, err := experiments.Fig5(experiments.DefaultFig5Config())
	if err != nil {
		return err
	}
	fmt.Println(f5.Table.String())
	summary.AddRowf("Fig 5", "augmentation accuracy gap (points)", "29.1",
		100*(f5.FinalWith-f5.FinalWithout))

	f8, err := experiments.Fig8()
	if err != nil {
		return err
	}
	fmt.Println(f8.Table.String())
	summary.AddRowf("Fig 8", "baseline saturation (accel-equivalents)", "≈18", f8.MaxSaturation)

	f9, err := experiments.Fig9()
	if err != nil {
		return err
	}
	fmt.Println(f9.Table.String())
	summary.AddRowf("Fig 9", "mean prep share at 256 accels (%)", "98.1", 100*f9.MeanPrepShare)

	f10, err := experiments.Fig10()
	if err != nil {
		return err
	}
	fmt.Println(f10.CPU.String())
	fmt.Println(f10.Memory.String())
	fmt.Println(f10.PCIe.String())
	summary.AddRowf("Fig 10a", "max CPU requirement (× DGX-2)", "100.7", f10.MaxCPU)
	summary.AddRowf("Fig 10a", "max cores required", "4833", f10.MaxCores)
	summary.AddRowf("Fig 10b", "max memory requirement (× DGX-2)", "17.9", f10.MaxMemory)
	summary.AddRowf("Fig 10c", "max PCIe requirement (× DGX-2)", "18.0", f10.MaxPCIe)

	f11, err := experiments.Fig11()
	if err != nil {
		return err
	}
	fmt.Println(f11.String())

	f19, err := experiments.Fig19()
	if err != nil {
		return err
	}
	fmt.Println(f19.Table.String())
	summary.AddRowf("Fig 19", "avg TrainBox speedup", "44.4×", f19.AvgTrainBox)
	summary.AddRowf("Fig 19", "avg B+Acc speedup", "3.32×", f19.AvgAcc)
	summary.AddRowf("Fig 19", "clustering gain over B+Acc+P2P", "13.4×", f19.ClusteringGain)
	summary.AddRowf("Fig 19", "max speedup workload", "TF-AA (84.3×)",
		fmt.Sprintf("%s (%.1f×)", f19.MaxName, f19.MaxTrainBox))

	f20, err := experiments.Fig20()
	if err != nil {
		return err
	}
	fmt.Println(f20.Table.String())
	summary.AddRowf("Fig 20", "speedup at batch 8192", "≈55×", f20.SpeedupAtLargest)

	for _, wl := range []string{"Inception-v4", "TF-SR"} {
		f21, err := experiments.Fig21(wl)
		if err != nil {
			return err
		}
		fmt.Println(f21.Table.String())
		summary.AddRowf("Fig 21", wl+" TrainBox accel-equivalents", "≈256", f21.FinalByConfig["TrainBox"])
	}

	f22, err := experiments.Fig22()
	if err != nil {
		return err
	}
	fmt.Println(f22.String())

	if *markdown {
		fmt.Println(summary.Markdown())
	} else {
		fmt.Println(summary.String())
	}
	return nil
}
