package main

import (
	"context"
	"fmt"
	"math/rand"

	"trainbox/internal/collective"
	"trainbox/internal/experiments"
	"trainbox/internal/metrics"
	"trainbox/internal/report"
)

// stepSync prices the gradient-sync backends through the sync study's
// analytical models and cross-checks the functional path. Every row is
// either closed-form (the latency models) or an exact counter (the
// ring's traffic), so the gate holds them to a tight threshold without
// wall-clock noise:
//
//   - sync_backends_bit_identical (higher is better): 1 when every
//     Reducer backend reproduced the ring's bits exactly in the
//     functional cross-check, 0 otherwise — the API-redesign invariant;
//   - sync_ring_latency_ms_256 / sync_ps_latency_ms_256 /
//     sync_innetwork_latency_ms_256 (lower is better): analytical sync
//     latencies at the paper's 256-accelerator target;
//   - sync_innetwork_speedup_vs_host_ring_256 (higher is better): what
//     SmartNIC in-switch aggregation buys over a host ring on the same
//     Ethernet ports;
//   - sync_ring_bytes_moved_8ranks_4096 (lower is better): exact bytes
//     the functional ring reducer moved for one 8-rank × 4096-element
//     reduce, from the collective.ring.bytes_moved counter.
func stepSync(h *harness) error {
	study, err := experiments.SyncStudy()
	if err != nil {
		return err
	}
	bitIdentical := 0.0
	if study.MaxDivergence == 0 {
		bitIdentical = 1.0
	}

	// Functional traffic row: meter one real reduce so the gate also
	// pins the implementation's wire cost, not just the models.
	const (
		ranks  = 8
		length = 4096
	)
	reg := metrics.NewRegistry()
	ring, err := collective.NewRing(collective.WithMetrics(reg))
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(77))
	grads := make([][]float64, ranks)
	for r := range grads {
		grads[r] = make([]float64, length)
		for i := range grads[r] {
			grads[r][i] = rng.NormFloat64()
		}
	}
	if err := ring.Reduce(context.Background(), grads); err != nil {
		return err
	}
	bytesMoved := reg.Counter("collective.ring.bytes_moved").Value()
	if bytesMoved == 0 {
		return fmt.Errorf("sync: ring reduce moved no bytes")
	}

	h.rep.Sync["sync_backends_bit_identical"] = cacheRow{
		Value: bitIdentical, HigherIsBetter: true,
	}
	h.rep.Sync["sync_ring_latency_ms_256"] = cacheRow{
		Value: study.RingMs, HigherIsBetter: false,
	}
	h.rep.Sync["sync_ps_latency_ms_256"] = cacheRow{
		Value: study.PSMs, HigherIsBetter: false,
	}
	h.rep.Sync["sync_innetwork_latency_ms_256"] = cacheRow{
		Value: study.InNetworkMs, HigherIsBetter: false,
	}
	h.rep.Sync["sync_innetwork_speedup_vs_host_ring_256"] = cacheRow{
		Value: study.InNetworkSpeedup, HigherIsBetter: true,
	}
	h.rep.Sync["sync_ring_bytes_moved_8ranks_4096"] = cacheRow{
		Value: float64(bytesMoved), HigherIsBetter: false,
	}

	t := report.NewTable("Gradient-sync backends (deterministic — tracked by the CI perf gate)",
		"metric", "value", "gate direction")
	for _, name := range []string{
		"sync_backends_bit_identical",
		"sync_ring_latency_ms_256",
		"sync_ps_latency_ms_256",
		"sync_innetwork_latency_ms_256",
		"sync_innetwork_speedup_vs_host_ring_256",
		"sync_ring_bytes_moved_8ranks_4096",
	} {
		row := h.rep.Sync[name]
		dir := "lower is better"
		if row.HigherIsBetter {
			dir = "higher is better"
		}
		t.AddRowf(name, fmt.Sprintf("%.3f", row.Value), dir)
	}
	h.print(t)
	return nil
}
