package main

import (
	"fmt"
	"sync"

	"trainbox/internal/dataprep"
	"trainbox/internal/dscache"
	"trainbox/internal/report"
	"trainbox/internal/storage"
	"trainbox/internal/units"
)

// stepDSCache measures the shared decode-cache tier at its headline
// cell: 4 concurrent consumers training on one corpus for 3 epochs
// through one ample-budget tier. Single-flight makes the decode count
// exact — one per key — so every row here is deterministic and the CI
// gate can hold them to a tight threshold without wall-clock noise:
//
//   - dscache_hit_rate (higher is better): fraction of acquires served
//     without a decode;
//   - dscache_decodes_per_epoch_4consumers (lower is better): decode
//     invocations per corpus pass, summed over all consumers;
//   - dscache_decode_amortization_4consumers (higher is better): the
//     "one decode, N consumers" ratio — what 4 independent uncached
//     consumers would have decoded, over what the tier actually did.
func stepDSCache(h *harness) error {
	const (
		items     = 8
		classes   = 4
		consumers = 4
		epochs    = 3
	)
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store, items, classes, 1); err != nil {
		return err
	}
	keys := store.Keys()
	cfg := dataprep.DefaultImageConfig()
	cfg.CropW, cfg.CropH = 32, 32

	c := dscache.New(64 * units.MB)
	var (
		wg   sync.WaitGroup
		errs = make([]error, consumers)
	)
	for w := 0; w < consumers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			exec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 2, int64(100+w))
			if _, ok := dscache.Bind(c, exec); !ok {
				errs[w] = fmt.Errorf("dscache: image preparer has no cached form")
				return
			}
			for epoch := 0; epoch < epochs; epoch++ {
				ps, err := exec.PrepareBatch(store, keys, epoch)
				if err != nil {
					errs[w] = err
					return
				}
				exec.Recycle(ps...)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	s := c.Stats()
	total := s.Hits + s.Misses
	if total == 0 || s.Misses == 0 {
		return fmt.Errorf("dscache: tier saw no traffic (hits=%d misses=%d)", s.Hits, s.Misses)
	}
	uncached := int64(consumers * epochs * len(keys))
	h.rep.DSCache["dscache_hit_rate"] = cacheRow{
		Value: float64(s.Hits) / float64(total), HigherIsBetter: true,
	}
	h.rep.DSCache["dscache_decodes_per_epoch_4consumers"] = cacheRow{
		Value: float64(s.Misses) / float64(epochs), HigherIsBetter: false,
	}
	h.rep.DSCache["dscache_decode_amortization_4consumers"] = cacheRow{
		Value: float64(uncached) / float64(s.Misses), HigherIsBetter: true,
	}

	t := report.NewTable("Shared decode-cache tier (deterministic — tracked by the CI perf gate)",
		"metric", "value", "gate direction")
	for _, name := range []string{
		"dscache_hit_rate", "dscache_decodes_per_epoch_4consumers", "dscache_decode_amortization_4consumers",
	} {
		row := h.rep.DSCache[name]
		dir := "lower is better"
		if row.HigherIsBetter {
			dir = "higher is better"
		}
		t.AddRowf(name, fmt.Sprintf("%.3f", row.Value), dir)
	}
	h.print(t)
	return nil
}
