// Command trainbox-sim runs a single experiment from the TrainBox
// reproduction and prints its table.
//
// Usage:
//
//	trainbox-sim -exp fig19          # one experiment
//	trainbox-sim -list               # list experiment names
//	trainbox-sim -exp fig21 -workload TF-SR
//	trainbox-sim -exp fig19 -csv     # emit CSV instead of aligned text
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"trainbox/internal/experiments"
	"trainbox/internal/report"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (see -list)")
	list := flag.Bool("list", false, "list experiment names and exit")
	wl := flag.String("workload", "Inception-v4", "workload for fig21")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	runners := map[string]func() ([]*report.Table, error){
		"table1": func() ([]*report.Table, error) { return []*report.Table{experiments.TableI()}, nil },
		"table2": func() ([]*report.Table, error) {
			t, err := experiments.TableII()
			return []*report.Table{t}, err
		},
		"table3": func() ([]*report.Table, error) {
			t, err := experiments.TableIII()
			return []*report.Table{t}, err
		},
		"fig2a": func() ([]*report.Table, error) { return []*report.Table{experiments.Fig2a()}, nil },
		"fig2b": func() ([]*report.Table, error) {
			r := experiments.Fig2b()
			return []*report.Table{r.Table}, nil
		},
		"fig3": func() ([]*report.Table, error) {
			r, err := experiments.Fig3()
			return []*report.Table{r.Table}, err
		},
		"fig5": func() ([]*report.Table, error) {
			r, err := experiments.Fig5(experiments.DefaultFig5Config())
			return []*report.Table{r.Table}, err
		},
		"fig8": func() ([]*report.Table, error) {
			r, err := experiments.Fig8()
			return []*report.Table{r.Table}, err
		},
		"fig9": func() ([]*report.Table, error) {
			r, err := experiments.Fig9()
			return []*report.Table{r.Table}, err
		},
		"fig10": func() ([]*report.Table, error) {
			r, err := experiments.Fig10()
			if err != nil {
				return nil, err
			}
			return []*report.Table{r.CPU, r.Memory, r.PCIe}, nil
		},
		"fig11": func() ([]*report.Table, error) {
			t, err := experiments.Fig11()
			return []*report.Table{t}, err
		},
		"fig19": func() ([]*report.Table, error) {
			r, err := experiments.Fig19()
			if err != nil {
				return nil, err
			}
			fmt.Printf("avg TrainBox speedup %.1f× (paper 44.4×), avg B+Acc %.1f× (paper 3.32×), max %.1f× on %s (paper 84.3× on TF-AA)\n",
				r.AvgTrainBox, r.AvgAcc, r.MaxTrainBox, r.MaxName)
			return []*report.Table{r.Table}, nil
		},
		"fig20": func() ([]*report.Table, error) {
			r, err := experiments.Fig20()
			return []*report.Table{r.Table}, err
		},
		"fig21": func() ([]*report.Table, error) {
			r, err := experiments.Fig21(*wl)
			return []*report.Table{r.Table}, err
		},
		"fig22": func() ([]*report.Table, error) {
			t, err := experiments.Fig22()
			return []*report.Table{t}, err
		},
		"ablation-fpga": func() ([]*report.Table, error) {
			t, err := experiments.AblationFPGAProvisioning(*wl)
			return []*report.Table{t}, err
		},
		"ablation-ethernet": func() ([]*report.Table, error) {
			t, err := experiments.AblationEthernet("TF-SR")
			return []*report.Table{t}, err
		},
		"ablation-sync": func() ([]*report.Table, error) {
			t, err := experiments.AblationSyncScheme()
			return []*report.Table{t}, err
		},
		"ablation-rc": func() ([]*report.Table, error) {
			t, err := experiments.AblationRCCapacity(*wl)
			return []*report.Table{t}, err
		},
		"ablation-pool": func() ([]*report.Table, error) {
			t, err := experiments.AblationPoolSharing()
			return []*report.Table{t}, err
		},
		"failure": func() ([]*report.Table, error) {
			t, err := experiments.FailureStudy(*wl)
			return []*report.Table{t}, err
		},
		"future": func() ([]*report.Table, error) {
			t, err := experiments.FutureWork()
			return []*report.Table{t}, err
		},
		"inference": func() ([]*report.Table, error) {
			t, err := experiments.InferenceStudy()
			return []*report.Table{t}, err
		},
		"staticprep": func() ([]*report.Table, error) {
			return []*report.Table{experiments.StaticPrep().Table}, nil
		},
		"huffman": func() ([]*report.Table, error) {
			r, err := experiments.HuffmanStudy(8)
			return []*report.Table{r.Table}, err
		},
		"planner": func() ([]*report.Table, error) {
			t, err := experiments.PlannerStudy()
			return []*report.Table{t}, err
		},
		"preppool": func() ([]*report.Table, error) {
			t, err := experiments.DynamicPoolStudy()
			return []*report.Table{t}, err
		},
		"autoscale": func() ([]*report.Table, error) {
			r, err := experiments.AutoscaleStudy()
			return []*report.Table{r.Table}, err
		},
		"dscache": func() ([]*report.Table, error) {
			r, err := experiments.CacheStudy()
			if err != nil {
				return nil, err
			}
			r.Table.Title += fmt.Sprintf(" — 4 consumers amortize %d decodes to %d (%.1f×)",
				r.UncachedDecodes, r.CachedDecodes, r.Amortization)
			return []*report.Table{r.Table}, nil
		},
		"sync": func() ([]*report.Table, error) {
			r, err := experiments.SyncStudy()
			if err != nil {
				return nil, err
			}
			r.Table.Title += fmt.Sprintf(" — backends bit-identical to ring (max divergence %g); in-network %.1f× over host eth ring at 256",
				r.MaxDivergence, r.InNetworkSpeedup)
			return []*report.Table{r.Table}, nil
		},
	}

	names := make([]string, 0, len(runners))
	for name := range runners {
		names = append(names, name)
	}
	sort.Strings(names)

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, n := range names {
			fmt.Println("  ", n)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "trainbox-sim: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	tables, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "trainbox-sim: %v\n", err)
		os.Exit(1)
	}
	for _, t := range tables {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}
}
