// Command trainbox-loadgen fires synthetic multi-tenant load at a
// running trainbox-serve and verifies the server's fairness and
// shedding invariants, exiting non-zero on any violation — the CI
// serving gate's teeth.
//
//	trainbox-loadgen -url http://127.0.0.1:8080 -tenants 50 -jobs 3
//
// -demo runs a self-contained burst sized for CI: enough tenants to
// force shedding, retry-until-admitted so fairness doubles as a
// no-starvation check.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"trainbox/internal/serve"
	"trainbox/internal/serve/loadtest"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "trainbox-serve base URL")
	tenants := flag.Int("tenants", 20, "concurrent tenants")
	jobs := flag.Int("jobs", 2, "jobs per tenant")
	items := flag.Int("items", 8, "dataset items per job")
	epochs := flag.Int("epochs", 1, "epochs per job")
	rate := flag.Float64("rate", 0, "required prep rate per job (samples/s; 0 = host path)")
	cancelEvery := flag.Int("cancel-every", 0, "cancel every n-th admitted job (0 = never)")
	churn := flag.Float64("churn", 0, "fraction of tenants that suspend+resume every job mid-burst (0 = off; needs an elastic backend)")
	timeout := flag.Duration("timeout", 2*time.Minute, "whole-run deadline")
	minFairness := flag.Float64("min-fairness", 1, "min/max admitted-per-tenant floor")
	wantShed := flag.Bool("want-shed", false, "fail unless the server shed at least once")
	demo := flag.Bool("demo", false, "CI-sized overload burst (overrides tenants/jobs/want-shed)")
	flag.Parse()

	cfg := loadtest.Config{
		Tenants:       *tenants,
		JobsPerTenant: *jobs,
		Spec:          serve.JobSpec{Items: *items, Epochs: *epochs, RequiredRate: *rate},
		CancelEvery:   *cancelEvery,
		ChurnFraction: *churn,
		Retries:       -1,
		Timeout:       *timeout,
	}
	inv := loadtest.Invariants{WantShed: *wantShed, MinFairness: *minFairness}
	if *demo {
		cfg.Tenants, cfg.JobsPerTenant = 40, 2
		cfg.CancelEvery = 2      // every tenant's second job gets a cancel attempt
		cfg.ChurnFraction = 0.25 // a quarter of the tenants suspend/resume mid-burst
		inv.WantShed = true
	}

	rep := loadtest.Run(context.Background(), loadtest.HTTP{BaseURL: *url}, cfg)
	fmt.Print(rep.String())
	if violations := rep.Verify(inv); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "loadgen: VIOLATION:", v)
		}
		os.Exit(1)
	}
	fmt.Println("loadgen: all invariants hold")
}
