// Command trainbox-topo builds a server architecture and prints its PCIe
// topology, device summary, and solved bottleneck analysis for one
// workload — the operator's inspection tool.
//
//	trainbox-topo -arch trainbox -accels 32 -workload Resnet-50
//	trainbox-topo -arch baseline -accels 16 -tree
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"trainbox/internal/arch"
	"trainbox/internal/core"
	"trainbox/internal/report"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

func main() {
	archName := flag.String("arch", "trainbox", "architecture: baseline | acc | p2p | gen4 | trainbox-nopool | trainbox")
	accels := flag.Int("accels", 32, "number of neural network accelerators")
	wl := flag.String("workload", "Resnet-50", "workload to solve for")
	tree := flag.Bool("tree", false, "print the full PCIe tree")
	replay := flag.Int("replay", 0, "replay N overlapped training steps and print the pipeline timeline")
	plan := flag.Float64("plan", 0, "instead of building, plan the smallest TrainBox rack for this samples/s target")
	flag.Parse()

	kinds := map[string]arch.Kind{
		"baseline":        arch.Baseline,
		"acc":             arch.BaselineAcc,
		"p2p":             arch.BaselineAccP2P,
		"gen4":            arch.BaselineAccP2PGen4,
		"trainbox-nopool": arch.TrainBoxNoPool,
		"trainbox":        arch.TrainBox,
	}
	kind, ok := kinds[strings.ToLower(*archName)]
	if !ok {
		fmt.Fprintf(os.Stderr, "trainbox-topo: unknown architecture %q\n", *archName)
		os.Exit(2)
	}
	w, err := workload.ByName(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trainbox-topo:", err)
		os.Exit(2)
	}
	if *plan > 0 {
		p, err := core.PlanRack(w, units.SamplesPerSec(*plan), 4096)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trainbox-topo:", err)
			os.Exit(1)
		}
		fmt.Printf("plan for %s at %.0f samples/s:\n", p.Workload, *plan)
		fmt.Printf("  %d train boxes (%d accelerators, %d in-box FPGAs, %d SSDs)\n",
			p.Boxes, p.Accels, p.InBoxFPGAs, p.SSDs)
		fmt.Printf("  prep-pool: %d FPGAs\n", p.PoolFPGAs)
		fmt.Printf("  achieved %.0f samples/s (bottleneck: %s)\n", float64(p.Achieved), p.Bottleneck)
		return
	}
	sys, err := arch.Build(arch.Config{Kind: kind, NumAccels: *accels})
	if err != nil {
		fmt.Fprintln(os.Stderr, "trainbox-topo:", err)
		os.Exit(1)
	}

	stats := sys.Topo.Summarize()
	fmt.Printf("%v with %d accelerators — %d PCIe nodes, depth %d\n",
		kind, *accels, stats.Nodes, stats.MaxDepth)
	for k, c := range stats.ByKind {
		fmt.Printf("  %-14v %d\n", k, c)
	}
	if len(sys.Boxes) > 0 {
		fmt.Printf("  train boxes    %d (pool: %d FPGAs)\n", len(sys.Boxes), sys.Config.PoolFPGAs)
	}
	fmt.Println()

	if *tree {
		fmt.Print(sys.Topo.Describe())
		fmt.Println()
	}

	res, err := core.Solve(sys, w)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trainbox-topo:", err)
		os.Exit(1)
	}
	fmt.Printf("workload %s:\n%s", w.Name, res.Explain())

	if *replay > 0 {
		sim, err := core.SimulateTraining(sys, w, *replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trainbox-topo:", err)
			os.Exit(1)
		}
		fmt.Printf("\nreplay of %d steps: %.0f samples/s, accel idle %.0f%%, prep idle %.0f%%\n",
			sim.Steps, float64(sim.Throughput), 100*sim.AccelIdle, 100*sim.PrepIdle)
		fmt.Print(report.Gantt("overlapped pipeline (prep for batch i+1 vs compute for batch i)", sim.Timeline, 72))
	}
}
