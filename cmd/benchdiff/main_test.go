package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name, schema string, throughput map[string]float64) string {
	t.Helper()
	data, err := json.Marshal(benchFile{Schema: schema, Throughput: throughput})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := map[string]float64{"a": 100, "b": 100, "c": 100}
	cur := map[string]float64{"a": 80, "b": 70, "c": 130}
	byName := map[string]delta{}
	for _, d := range compare(base, cur, 0.25) {
		byName[d.Name] = d
	}
	if byName["a"].Regressed {
		t.Error("a dropped 20% < threshold, must pass")
	}
	if !byName["b"].Regressed {
		t.Error("b dropped 30% > threshold, must regress")
	}
	if byName["c"].Regressed {
		t.Error("c improved, must pass")
	}
}

func TestCompareMissingMetricFails(t *testing.T) {
	deltas := compare(map[string]float64{"gone": 50}, map[string]float64{}, 0.25)
	if len(deltas) != 1 || !deltas[0].Missing {
		t.Fatalf("deltas = %+v, want one missing", deltas)
	}
}

// TestCompareNewMetricInformational: metrics only in the current report
// are surfaced as New — listed after the tracked metrics, never flagged
// as regressed or missing.
func TestCompareNewMetricInformational(t *testing.T) {
	deltas := compare(map[string]float64{"a": 1}, map[string]float64{"a": 1, "zz": 9, "bb": 4}, 0.25)
	if len(deltas) != 3 {
		t.Fatalf("deltas = %+v, want tracked + 2 new", deltas)
	}
	if deltas[0].Name != "a" || deltas[0].New {
		t.Errorf("tracked metric mangled: %+v", deltas[0])
	}
	// New metrics follow the tracked ones, themselves sorted.
	if deltas[1].Name != "bb" || deltas[2].Name != "zz" {
		t.Errorf("new metrics out of order: %+v", deltas[1:])
	}
	for _, d := range deltas[1:] {
		if !d.New || d.Regressed || d.Missing {
			t.Errorf("new metric misclassified: %+v", d)
		}
		if d.Current == 0 {
			t.Errorf("new metric lost its value: %+v", d)
		}
	}
}

func TestCompareDeterministicOrder(t *testing.T) {
	base := map[string]float64{"z": 1, "a": 1, "m": 1}
	deltas := compare(base, base, 0.25)
	if deltas[0].Name != "a" || deltas[1].Name != "m" || deltas[2].Name != "z" {
		t.Fatalf("order = %v, want sorted", deltas)
	}
}

// TestRunExitCodes drives the gate end-to-end through real files: pass,
// regression, missing metric, schema mismatch, empty baseline.
func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "trainbox-bench/v1",
		map[string]float64{"prefetcher_samples_per_sec": 1000})

	ok := writeReport(t, dir, "ok.json", "trainbox-bench/v1",
		map[string]float64{"prefetcher_samples_per_sec": 900})
	if code, out := run(base, ok, 0.25, 0.25, 0.5, 0.25, 0.25); code != 0 {
		t.Errorf("10%% drop: exit %d, output:\n%s", code, out)
	}

	bad := writeReport(t, dir, "bad.json", "trainbox-bench/v1",
		map[string]float64{"prefetcher_samples_per_sec": 500})
	code, out := run(base, bad, 0.25, 0.25, 0.5, 0.25, 0.25)
	if code != 1 {
		t.Errorf("50%% drop: exit %d, want 1", code)
	}
	if !strings.Contains(out, "REGRESSED") {
		t.Errorf("output does not flag the regression:\n%s", out)
	}

	empty := writeReport(t, dir, "empty.json", "trainbox-bench/v1", map[string]float64{})
	if code, _ := run(base, empty, 0.25, 0.25, 0.5, 0.25, 0.25); code != 1 {
		t.Errorf("missing tracked metric: exit %d, want 1", code)
	}

	wrong := writeReport(t, dir, "wrong.json", "somethingelse/v9",
		map[string]float64{"prefetcher_samples_per_sec": 1000})
	if code, _ := run(base, wrong, 0.25, 0.25, 0.5, 0.25, 0.25); code != 2 {
		t.Errorf("schema mismatch: exit %d, want 2", code)
	}

	if code, _ := run(empty, ok, 0.25, 0.25, 0.5, 0.25, 0.25); code != 2 {
		t.Errorf("empty baseline: exit %d, want 2", code)
	}

	if code, _ := run(base, filepath.Join(dir, "nope.json"), 0.25, 0.25, 0.5, 0.25, 0.25); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}

	if code, _ := run(base, ok, 1.5, 0.25, 0.5, 0.25, 0.25); code != 2 {
		t.Errorf("bad threshold: exit %d, want 2", code)
	}

	// New metrics in the current report are informational: the gate still
	// passes, and the output names them so regenerating the baseline is an
	// obvious next step.
	grown := writeReport(t, dir, "grown.json", "trainbox-bench/v1",
		map[string]float64{"prefetcher_samples_per_sec": 950, "pool_degraded_samples_per_sec": 500})
	code, out = run(base, grown, 0.25, 0.25, 0.5, 0.25, 0.25)
	if code != 0 {
		t.Errorf("new metric failed the gate: exit %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "pool_degraded_samples_per_sec") || !strings.Contains(out, "new (untracked)") {
		t.Errorf("new metric not surfaced as informational:\n%s", out)
	}

	// A run that both regresses and grows still fails — new metrics never
	// mask a regression.
	grownBad := writeReport(t, dir, "grownbad.json", "trainbox-bench/v1",
		map[string]float64{"prefetcher_samples_per_sec": 500, "pool_degraded_samples_per_sec": 500})
	if code, _ := run(base, grownBad, 0.25, 0.25, 0.5, 0.25, 0.25); code != 1 {
		t.Errorf("regression masked by new metric: exit %d, want 1", code)
	}
}

func writeReportK(t *testing.T, dir, name string, throughput map[string]float64, kernels map[string]kernelStat) string {
	t.Helper()
	data, err := json.Marshal(benchFile{Schema: "trainbox-bench/v1.1", Throughput: throughput, Kernels: kernels})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareKernelsAllocGate covers the allocation gate's arms:
// tolerated growth, regression past the threshold, the zero-baseline
// invariant, improvement, and missing/new kernels.
func TestCompareKernelsAllocGate(t *testing.T) {
	base := map[string]kernelStat{
		"a":    {NsPerSample: 100, AllocsPerSample: 100},
		"b":    {NsPerSample: 100, AllocsPerSample: 100},
		"zero": {NsPerSample: 100, AllocsPerSample: 0},
		"gone": {NsPerSample: 100, AllocsPerSample: 10},
	}
	cur := map[string]kernelStat{
		"a":    {NsPerSample: 900, AllocsPerSample: 120}, // +20% allocs, 9× slower: ns never gates
		"b":    {NsPerSample: 10, AllocsPerSample: 130},  // +30% allocs
		"zero": {NsPerSample: 100, AllocsPerSample: 1},   // zero-alloc invariant broken
		"new":  {NsPerSample: 1, AllocsPerSample: 1},
	}
	byName := map[string]kernelDelta{}
	for _, d := range compareKernels(base, cur, 0.25) {
		byName[d.Name] = d
	}
	if byName["a"].Regressed {
		t.Error("a grew 20% < threshold, must pass")
	}
	if !byName["b"].Regressed {
		t.Error("b grew 30% > threshold, must regress")
	}
	if !byName["zero"].Regressed {
		t.Error("zero-alloc kernel allocated, must regress")
	}
	if !byName["gone"].Missing {
		t.Error("dropped kernel must be flagged missing")
	}
	if d := byName["new"]; !d.New || d.Regressed || d.Missing {
		t.Errorf("new kernel misclassified: %+v", d)
	}

	// An improvement (fewer allocs) never regresses.
	better := compareKernels(
		map[string]kernelStat{"k": {AllocsPerSample: 100}},
		map[string]kernelStat{"k": {AllocsPerSample: 3}}, 0.25)
	if better[0].Regressed {
		t.Error("allocation improvement flagged as regression")
	}
}

// TestCompareLatencyGate covers the latency gate's arms: lower is
// better, tolerated growth passes, growth past the threshold
// regresses, improvement passes, and missing/new metrics are
// classified like the other gates.
func TestCompareLatencyGate(t *testing.T) {
	base := map[string]float64{
		"a":    1000,
		"b":    1000,
		"c":    1000,
		"gone": 1000,
	}
	cur := map[string]float64{
		"a":   1400, // +40% < 50% threshold
		"b":   1600, // +60% > threshold
		"c":   200,  // faster: never regresses
		"new": 5,
	}
	byName := map[string]delta{}
	for _, d := range compareLatency(base, cur, 0.5) {
		byName[d.Name] = d
	}
	if byName["a"].Regressed {
		t.Error("a grew 40% < threshold, must pass")
	}
	if !byName["b"].Regressed {
		t.Error("b grew 60% > threshold, must regress")
	}
	if byName["c"].Regressed {
		t.Error("c improved, must pass")
	}
	if !byName["gone"].Missing {
		t.Error("dropped latency metric must be flagged missing")
	}
	if d := byName["new"]; !d.New || d.Regressed || d.Missing {
		t.Errorf("new latency metric misclassified: %+v", d)
	}
}

func writeReportL(t *testing.T, dir, name string, throughput, latency map[string]float64) string {
	t.Helper()
	data, err := json.Marshal(benchFile{Schema: "trainbox-bench/v1.2", Throughput: throughput, Latency: latency})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunLatencyGateEndToEnd drives the latency gate through real
// files: checkpoint-restore growth past the threshold fails the run
// even when throughput is healthy, and a pre-latency baseline gates
// nothing until regenerated.
func TestRunLatencyGateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	tp := map[string]float64{"prefetcher_samples_per_sec": 1000}
	base := writeReportL(t, dir, "base.json", tp,
		map[string]float64{"checkpoint_restore_ns": 10000})

	ok := writeReportL(t, dir, "ok.json", tp,
		map[string]float64{"checkpoint_restore_ns": 12000})
	if code, out := run(base, ok, 0.25, 0.25, 0.5, 0.25, 0.25); code != 0 {
		t.Errorf("+20%% latency: exit %d, output:\n%s", code, out)
	}

	bad := writeReportL(t, dir, "bad.json", tp,
		map[string]float64{"checkpoint_restore_ns": 40000})
	code, out := run(base, bad, 0.25, 0.25, 0.5, 0.25, 0.25)
	if code != 1 {
		t.Errorf("4x latency: exit %d, want 1", code)
	}
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "checkpoint_restore_ns") {
		t.Errorf("output does not flag the latency regression:\n%s", out)
	}

	// Dropping the tracked latency metric fails.
	dropped := writeReportL(t, dir, "dropped.json", tp, map[string]float64{})
	if code, _ := run(base, dropped, 0.25, 0.25, 0.5, 0.25, 0.25); code != 1 {
		t.Errorf("dropped latency metric: exit %d, want 1", code)
	}

	// A v1.1 baseline with no latency map still gates throughput and
	// kernels only; the new metric is informational.
	v11 := writeReport(t, dir, "v11.json", "trainbox-bench/v1.1", tp)
	if code, out := run(v11, bad, 0.25, 0.25, 0.5, 0.25, 0.25); code != 0 {
		t.Errorf("v1.1 baseline must not gate latency: exit %d, output:\n%s", code, out)
	}

	if code, _ := run(base, ok, 0.25, 0.25, -0.1, 0.25, 0.25); code != 2 {
		t.Errorf("negative latency-threshold: exit %d, want 2", code)
	}
}

// TestCompareCacheGate covers the cache gate's arms in both
// directions: tolerated moves pass, moves past the threshold in the
// row's own bad direction regress, improvements never regress, and
// missing/new rows are classified like the other gates.
func TestCompareCacheGate(t *testing.T) {
	base := map[string]cacheRow{
		"hit_rate_ok":   {Value: 0.9, HigherIsBetter: true},
		"hit_rate_bad":  {Value: 0.9, HigherIsBetter: true},
		"decodes_ok":    {Value: 8, HigherIsBetter: false},
		"decodes_bad":   {Value: 8, HigherIsBetter: false},
		"decodes_down":  {Value: 8, HigherIsBetter: false},
		"amort_up":      {Value: 4, HigherIsBetter: true},
		"zero_decodes":  {Value: 0, HigherIsBetter: false},
		"zero_hit_rate": {Value: 0, HigherIsBetter: true},
		"gone":          {Value: 1, HigherIsBetter: true},
	}
	cur := map[string]cacheRow{
		"hit_rate_ok":   {Value: 0.8, HigherIsBetter: true}, // −11% > −25%: passes
		"hit_rate_bad":  {Value: 0.5, HigherIsBetter: true}, // −44%: regresses
		"decodes_ok":    {Value: 9, HigherIsBetter: false},  // +12.5% < 25%: passes
		"decodes_bad":   {Value: 12, HigherIsBetter: false}, // +50%: regresses
		"decodes_down":  {Value: 1, HigherIsBetter: false},  // improvement
		"amort_up":      {Value: 12, HigherIsBetter: true},  // improvement
		"zero_decodes":  {Value: 3, HigherIsBetter: false},  // zero baseline crossed upward
		"zero_hit_rate": {Value: 0.5, HigherIsBetter: true}, // zero baseline improved
		"new":           {Value: 1, HigherIsBetter: true},
	}
	byName := map[string]cacheDelta{}
	for _, d := range compareCache(base, cur, 0.25) {
		byName[d.Name] = d
	}
	if byName["hit_rate_ok"].Regressed {
		t.Error("hit rate dropped 11% < threshold, must pass")
	}
	if !byName["hit_rate_bad"].Regressed {
		t.Error("hit rate dropped 44% > threshold, must regress")
	}
	if byName["decodes_ok"].Regressed {
		t.Error("decodes grew 12.5% < threshold, must pass")
	}
	if !byName["decodes_bad"].Regressed {
		t.Error("decodes grew 50% > threshold, must regress")
	}
	if byName["decodes_down"].Regressed || byName["amort_up"].Regressed {
		t.Error("improvements flagged as regressions")
	}
	if !byName["zero_decodes"].Regressed {
		t.Error("zero lower-is-better baseline crossed, must regress")
	}
	if byName["zero_hit_rate"].Regressed {
		t.Error("zero higher-is-better baseline improved, must pass")
	}
	if !byName["gone"].Missing {
		t.Error("dropped cache row must be flagged missing")
	}
	if d := byName["new"]; !d.New || d.Regressed || d.Missing {
		t.Errorf("new cache row misclassified: %+v", d)
	}
}

func writeReportC(t *testing.T, dir, name string, throughput map[string]float64, dscache map[string]cacheRow) string {
	t.Helper()
	data, err := json.Marshal(benchFile{Schema: "trainbox-bench/v1.3", Throughput: throughput, DSCache: dscache})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunCacheGateEndToEnd drives the cache gate through real files: a
// hit-rate collapse fails the run even when throughput is healthy, a
// pre-cache baseline gates nothing until regenerated, and a negative
// threshold is bad input.
func TestRunCacheGateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	tp := map[string]float64{"prefetcher_samples_per_sec": 1000}
	base := writeReportC(t, dir, "base.json", tp, map[string]cacheRow{
		"dscache_hit_rate":                     {Value: 0.9, HigherIsBetter: true},
		"dscache_decodes_per_epoch_4consumers": {Value: 8, HigherIsBetter: false},
	})

	ok := writeReportC(t, dir, "ok.json", tp, map[string]cacheRow{
		"dscache_hit_rate":                     {Value: 0.85, HigherIsBetter: true},
		"dscache_decodes_per_epoch_4consumers": {Value: 8, HigherIsBetter: false},
	})
	if code, out := run(base, ok, 0.25, 0.25, 0.5, 0.25, 0.25); code != 0 {
		t.Errorf("small hit-rate dip: exit %d, output:\n%s", code, out)
	}

	bad := writeReportC(t, dir, "bad.json", tp, map[string]cacheRow{
		"dscache_hit_rate":                     {Value: 0.2, HigherIsBetter: true},
		"dscache_decodes_per_epoch_4consumers": {Value: 32, HigherIsBetter: false},
	})
	code, out := run(base, bad, 0.25, 0.25, 0.5, 0.25, 0.25)
	if code != 1 {
		t.Errorf("hit-rate collapse: exit %d, want 1", code)
	}
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "dscache_hit_rate") {
		t.Errorf("output does not flag the cache regression:\n%s", out)
	}

	// Dropping a tracked cache row fails — coverage cannot silently
	// shrink.
	dropped := writeReportC(t, dir, "dropped.json", tp, map[string]cacheRow{})
	if code, _ := run(base, dropped, 0.25, 0.25, 0.5, 0.25, 0.25); code != 1 {
		t.Errorf("dropped cache row: exit %d, want 1", code)
	}

	// A v1.2 baseline with no dscache map still gates the older
	// sections only; the new rows are informational.
	v12 := writeReport(t, dir, "v12.json", "trainbox-bench/v1.2", tp)
	if code, out := run(v12, bad, 0.25, 0.25, 0.5, 0.25, 0.25); code != 0 {
		t.Errorf("v1.2 baseline must not gate cache rows: exit %d, output:\n%s", code, out)
	}

	if code, _ := run(base, ok, 0.25, 0.25, 0.5, -0.1, 0.25); code != 2 {
		t.Errorf("negative cache-threshold: exit %d, want 2", code)
	}
}

// TestRunKernelGateEndToEnd drives the allocation gate through real
// files: growth past the threshold fails the run even when every
// throughput metric is healthy.
func TestRunKernelGateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	tp := map[string]float64{"prefetcher_samples_per_sec": 1000}
	base := writeReportK(t, dir, "base.json", tp,
		map[string]kernelStat{"prepare_image": {NsPerSample: 5000, AllocsPerSample: 4}})

	ok := writeReportK(t, dir, "ok.json", tp,
		map[string]kernelStat{"prepare_image": {NsPerSample: 9000, AllocsPerSample: 4}})
	if code, out := run(base, ok, 0.25, 0.25, 0.5, 0.25, 0.25); code != 0 {
		t.Errorf("unchanged allocs: exit %d, output:\n%s", code, out)
	}

	bad := writeReportK(t, dir, "bad.json", tp,
		map[string]kernelStat{"prepare_image": {NsPerSample: 5000, AllocsPerSample: 400}})
	code, out := run(base, bad, 0.25, 0.25, 0.5, 0.25, 0.25)
	if code != 1 {
		t.Errorf("100× alloc growth: exit %d, want 1", code)
	}
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "prepare_image") {
		t.Errorf("output does not flag the alloc regression:\n%s", out)
	}

	// Dropping a tracked kernel fails — coverage cannot silently shrink.
	dropped := writeReportK(t, dir, "dropped.json", tp, map[string]kernelStat{})
	if code, _ := run(base, dropped, 0.25, 0.25, 0.5, 0.25, 0.25); code != 1 {
		t.Errorf("dropped kernel: exit %d, want 1", code)
	}

	// A v1 baseline with no kernels still gates throughput only — the
	// kernel gate activates once a regenerated baseline tracks kernels.
	v1 := writeReport(t, dir, "v1.json", "trainbox-bench/v1", tp)
	if code, out := run(v1, bad, 0.25, 0.25, 0.5, 0.25, 0.25); code != 0 {
		t.Errorf("v1 baseline must not gate kernels: exit %d, output:\n%s", code, out)
	}

	if code, _ := run(base, ok, 0.25, -0.1, 0.5, 0.25, 0.25); code != 2 {
		t.Errorf("negative alloc-threshold: exit %d, want 2", code)
	}
}

func writeReportS(t *testing.T, dir, name string, throughput map[string]float64, sync map[string]cacheRow) string {
	t.Helper()
	data, err := json.Marshal(benchFile{Schema: "trainbox-bench/v1.4", Throughput: throughput, Sync: sync})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunSyncGateEndToEnd drives the sync gate through real files: a
// bit-identity break or a latency blow-up fails the run even when
// throughput is healthy, a pre-sync baseline gates nothing until
// regenerated, and a negative threshold is bad input.
func TestRunSyncGateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	tp := map[string]float64{"prefetcher_samples_per_sec": 1000}
	base := writeReportS(t, dir, "base.json", tp, map[string]cacheRow{
		"sync_backends_bit_identical": {Value: 1, HigherIsBetter: true},
		"sync_ring_latency_ms_256":    {Value: 2.2, HigherIsBetter: false},
	})

	ok := writeReportS(t, dir, "ok.json", tp, map[string]cacheRow{
		"sync_backends_bit_identical": {Value: 1, HigherIsBetter: true},
		"sync_ring_latency_ms_256":    {Value: 2.4, HigherIsBetter: false},
	})
	if code, out := run(base, ok, 0.25, 0.25, 0.5, 0.25, 0.25); code != 0 {
		t.Errorf("small latency move: exit %d, output:\n%s", code, out)
	}

	// A backend losing bit-identity drops the flag from 1 to 0 — a 100%
	// move in the bad direction.
	bad := writeReportS(t, dir, "bad.json", tp, map[string]cacheRow{
		"sync_backends_bit_identical": {Value: 0, HigherIsBetter: true},
		"sync_ring_latency_ms_256":    {Value: 9.9, HigherIsBetter: false},
	})
	code, out := run(base, bad, 0.25, 0.25, 0.5, 0.25, 0.25)
	if code != 1 {
		t.Errorf("bit-identity break: exit %d, want 1", code)
	}
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "sync_backends_bit_identical") {
		t.Errorf("output does not flag the sync regression:\n%s", out)
	}
	if !strings.Contains(out, "sync row(s) moved") {
		t.Errorf("summary does not name the sync gate:\n%s", out)
	}

	// Dropping a tracked sync row fails — coverage cannot silently
	// shrink.
	dropped := writeReportS(t, dir, "dropped.json", tp, map[string]cacheRow{})
	if code, _ := run(base, dropped, 0.25, 0.25, 0.5, 0.25, 0.25); code != 1 {
		t.Errorf("dropped sync row: exit %d, want 1", code)
	}

	// A v1.3 baseline with no sync map still gates the older sections
	// only; the new rows are informational.
	v13 := writeReport(t, dir, "v13.json", "trainbox-bench/v1.3", tp)
	if code, out := run(v13, bad, 0.25, 0.25, 0.5, 0.25, 0.25); code != 0 {
		t.Errorf("v1.3 baseline must not gate sync rows: exit %d, output:\n%s", code, out)
	}

	if code, _ := run(base, ok, 0.25, 0.25, 0.5, 0.25, -0.1); code != 2 {
		t.Errorf("negative sync-threshold: exit %d, want 2", code)
	}
}
