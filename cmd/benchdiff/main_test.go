package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name, schema string, throughput map[string]float64) string {
	t.Helper()
	data, err := json.Marshal(benchFile{Schema: schema, Throughput: throughput})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := map[string]float64{"a": 100, "b": 100, "c": 100}
	cur := map[string]float64{"a": 80, "b": 70, "c": 130}
	byName := map[string]delta{}
	for _, d := range compare(base, cur, 0.25) {
		byName[d.Name] = d
	}
	if byName["a"].Regressed {
		t.Error("a dropped 20% < threshold, must pass")
	}
	if !byName["b"].Regressed {
		t.Error("b dropped 30% > threshold, must regress")
	}
	if byName["c"].Regressed {
		t.Error("c improved, must pass")
	}
}

func TestCompareMissingMetricFails(t *testing.T) {
	deltas := compare(map[string]float64{"gone": 50}, map[string]float64{}, 0.25)
	if len(deltas) != 1 || !deltas[0].Missing {
		t.Fatalf("deltas = %+v, want one missing", deltas)
	}
}

// TestCompareNewMetricInformational: metrics only in the current report
// are surfaced as New — listed after the tracked metrics, never flagged
// as regressed or missing.
func TestCompareNewMetricInformational(t *testing.T) {
	deltas := compare(map[string]float64{"a": 1}, map[string]float64{"a": 1, "zz": 9, "bb": 4}, 0.25)
	if len(deltas) != 3 {
		t.Fatalf("deltas = %+v, want tracked + 2 new", deltas)
	}
	if deltas[0].Name != "a" || deltas[0].New {
		t.Errorf("tracked metric mangled: %+v", deltas[0])
	}
	// New metrics follow the tracked ones, themselves sorted.
	if deltas[1].Name != "bb" || deltas[2].Name != "zz" {
		t.Errorf("new metrics out of order: %+v", deltas[1:])
	}
	for _, d := range deltas[1:] {
		if !d.New || d.Regressed || d.Missing {
			t.Errorf("new metric misclassified: %+v", d)
		}
		if d.Current == 0 {
			t.Errorf("new metric lost its value: %+v", d)
		}
	}
}

func TestCompareDeterministicOrder(t *testing.T) {
	base := map[string]float64{"z": 1, "a": 1, "m": 1}
	deltas := compare(base, base, 0.25)
	if deltas[0].Name != "a" || deltas[1].Name != "m" || deltas[2].Name != "z" {
		t.Fatalf("order = %v, want sorted", deltas)
	}
}

// TestRunExitCodes drives the gate end-to-end through real files: pass,
// regression, missing metric, schema mismatch, empty baseline.
func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "trainbox-bench/v1",
		map[string]float64{"prefetcher_samples_per_sec": 1000})

	ok := writeReport(t, dir, "ok.json", "trainbox-bench/v1",
		map[string]float64{"prefetcher_samples_per_sec": 900})
	if code, out := run(base, ok, 0.25); code != 0 {
		t.Errorf("10%% drop: exit %d, output:\n%s", code, out)
	}

	bad := writeReport(t, dir, "bad.json", "trainbox-bench/v1",
		map[string]float64{"prefetcher_samples_per_sec": 500})
	code, out := run(base, bad, 0.25)
	if code != 1 {
		t.Errorf("50%% drop: exit %d, want 1", code)
	}
	if !strings.Contains(out, "REGRESSED") {
		t.Errorf("output does not flag the regression:\n%s", out)
	}

	empty := writeReport(t, dir, "empty.json", "trainbox-bench/v1", map[string]float64{})
	if code, _ := run(base, empty, 0.25); code != 1 {
		t.Errorf("missing tracked metric: exit %d, want 1", code)
	}

	wrong := writeReport(t, dir, "wrong.json", "somethingelse/v9",
		map[string]float64{"prefetcher_samples_per_sec": 1000})
	if code, _ := run(base, wrong, 0.25); code != 2 {
		t.Errorf("schema mismatch: exit %d, want 2", code)
	}

	if code, _ := run(empty, ok, 0.25); code != 2 {
		t.Errorf("empty baseline: exit %d, want 2", code)
	}

	if code, _ := run(base, filepath.Join(dir, "nope.json"), 0.25); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}

	if code, _ := run(base, ok, 1.5); code != 2 {
		t.Errorf("bad threshold: exit %d, want 2", code)
	}

	// New metrics in the current report are informational: the gate still
	// passes, and the output names them so regenerating the baseline is an
	// obvious next step.
	grown := writeReport(t, dir, "grown.json", "trainbox-bench/v1",
		map[string]float64{"prefetcher_samples_per_sec": 950, "pool_degraded_samples_per_sec": 500})
	code, out = run(base, grown, 0.25)
	if code != 0 {
		t.Errorf("new metric failed the gate: exit %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "pool_degraded_samples_per_sec") || !strings.Contains(out, "new (untracked)") {
		t.Errorf("new metric not surfaced as informational:\n%s", out)
	}

	// A run that both regresses and grows still fails — new metrics never
	// mask a regression.
	grownBad := writeReport(t, dir, "grownbad.json", "trainbox-bench/v1",
		map[string]float64{"prefetcher_samples_per_sec": 500, "pool_degraded_samples_per_sec": 500})
	if code, _ := run(base, grownBad, 0.25); code != 1 {
		t.Errorf("regression masked by new metric: exit %d, want 1", code)
	}
}
