// Command benchdiff is the CI perf-regression gate: it compares the
// tracked throughput metrics and the per-kernel allocation matrix of a
// freshly generated BENCH.json (from `trainbox-bench -json`) against
// the committed BENCH_baseline.json and exits non-zero if any metric
// regressed by more than the threshold.
//
//	benchdiff -baseline BENCH_baseline.json -current bench.json [-threshold 0.25] [-alloc-threshold 0.25] [-latency-threshold 0.5] [-cache-threshold 0.25] [-sync-threshold 0.25]
//
// Five gates run:
//
//   - throughput (lower is worse): a tracked metric fails when it drops
//     more than -threshold below the baseline;
//   - kernel allocs/sample (higher is worse): a tracked kernel fails
//     when its allocation count grows more than -alloc-threshold above
//     the baseline. A zero-alloc baseline fails on any allocation at
//     all (cur > 0.5): zero allocations is an invariant, not a level.
//     Kernel ns/sample is reported but never gated — allocation counts
//     are deterministic where CI wall-clock is not;
//   - latency (higher is worse): a tracked latency metric — the
//     elastic-jobs checkpoint_restore_ns round trip — fails when it
//     grows more than -latency-threshold above the baseline. The wider
//     default (50%) absorbs wall-clock noise on shared runners while
//     still catching the recovery path getting an order of magnitude
//     more expensive;
//   - cache (direction per row): a tracked dscache row fails when it
//     moves more than -cache-threshold in its own bad direction — hit
//     rate and decode amortization dropping, decode counts growing. The
//     rows are exact counts (single-flight makes decodes-per-key
//     deterministic), so the threshold guards real behaviour changes,
//     not runner noise;
//   - sync (direction per row): a tracked gradient-sync row fails when
//     it moves more than -sync-threshold in its own bad direction —
//     bit-identity or the in-network speedup dropping, modelled sync
//     latencies or the ring's exact traffic count growing. Every row is
//     analytical or an exact counter, so like the cache gate the
//     threshold guards real behaviour changes, not runner noise.
//
// Only metrics present in the baseline are gated — new ones start
// being tracked once they land in a regenerated baseline, and
// improvements never fail the gate. The default 25% thresholds absorb
// CI-runner noise; tighten them locally when comparing runs on one
// machine.
//
// Exit codes: 0 = no regression, 1 = regression detected, 2 = bad
// input (missing file, schema mismatch, empty baseline).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"trainbox/internal/report"
)

// benchFile is the subset of the trainbox-bench JSON schema the gate
// reads.
type benchFile struct {
	Schema     string                `json:"schema"`
	GoVersion  string                `json:"go_version"`
	Throughput map[string]float64    `json:"throughput"`
	Kernels    map[string]kernelStat `json:"kernels"`
	Latency    map[string]float64    `json:"latency"`
	DSCache    map[string]cacheRow   `json:"dscache"`
	Sync       map[string]cacheRow   `json:"sync"`
}

// kernelStat mirrors trainbox-bench's per-kernel entry.
type kernelStat struct {
	NsPerSample     float64 `json:"ns_per_sample"`
	AllocsPerSample float64 `json:"allocs_per_sample"`
}

// cacheRow mirrors trainbox-bench's per-row dscache entry; the row
// carries its own gate direction.
type cacheRow struct {
	Value          float64 `json:"value"`
	HigherIsBetter bool    `json:"higher_is_better"`
}

// delta is one metric's comparison.
type delta struct {
	Name      string
	Baseline  float64
	Current   float64
	Change    float64 // (current-baseline)/baseline
	Regressed bool
	Missing   bool // tracked in baseline, absent from current
	New       bool // in current, not yet tracked by the baseline
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
	currentPath := flag.String("current", "bench.json", "freshly generated report")
	threshold := flag.Float64("threshold", 0.25, "maximum tolerated fractional throughput drop (0.25 = 25%)")
	allocThreshold := flag.Float64("alloc-threshold", 0.25, "maximum tolerated fractional allocs/sample growth per kernel (0.25 = 25%)")
	latencyThreshold := flag.Float64("latency-threshold", 0.5, "maximum tolerated fractional latency growth (0.5 = 50%)")
	cacheThreshold := flag.Float64("cache-threshold", 0.25, "maximum tolerated fractional move of a dscache row in its bad direction (0.25 = 25%)")
	syncThreshold := flag.Float64("sync-threshold", 0.25, "maximum tolerated fractional move of a gradient-sync row in its bad direction (0.25 = 25%)")
	flag.Parse()

	code, out := run(*baselinePath, *currentPath, *threshold, *allocThreshold, *latencyThreshold, *cacheThreshold, *syncThreshold)
	fmt.Print(out)
	os.Exit(code)
}

func run(baselinePath, currentPath string, threshold, allocThreshold, latencyThreshold, cacheThreshold, syncThreshold float64) (int, string) {
	if threshold < 0 || threshold >= 1 {
		return 2, fmt.Sprintf("benchdiff: threshold %v outside [0,1)\n", threshold)
	}
	if allocThreshold < 0 {
		return 2, fmt.Sprintf("benchdiff: alloc-threshold %v negative\n", allocThreshold)
	}
	if latencyThreshold < 0 {
		return 2, fmt.Sprintf("benchdiff: latency-threshold %v negative\n", latencyThreshold)
	}
	if cacheThreshold < 0 {
		return 2, fmt.Sprintf("benchdiff: cache-threshold %v negative\n", cacheThreshold)
	}
	if syncThreshold < 0 {
		return 2, fmt.Sprintf("benchdiff: sync-threshold %v negative\n", syncThreshold)
	}
	baseline, err := load(baselinePath)
	if err != nil {
		return 2, fmt.Sprintf("benchdiff: baseline: %v\n", err)
	}
	current, err := load(currentPath)
	if err != nil {
		return 2, fmt.Sprintf("benchdiff: current: %v\n", err)
	}
	if len(baseline.Throughput) == 0 {
		return 2, fmt.Sprintf("benchdiff: %s tracks no throughput metrics — regenerate it with `trainbox-bench -json`\n", baselinePath)
	}

	deltas := compare(baseline.Throughput, current.Throughput, threshold)
	var sb strings.Builder
	t := report.NewTable(fmt.Sprintf("Throughput vs baseline (gate: -%.0f%%)", threshold*100),
		"metric", "baseline", "current", "change", "status")
	regressions, untracked := 0, 0
	for _, d := range deltas {
		switch {
		case d.Missing:
			regressions++
			t.AddRowf(d.Name, d.Baseline, "—", "—", "MISSING")
		case d.New:
			untracked++
			t.AddRowf(d.Name, "—", d.Current, "—", "new (untracked)")
		case d.Regressed:
			regressions++
			t.AddRowf(d.Name, d.Baseline, d.Current, fmt.Sprintf("%+.1f%%", 100*d.Change), "REGRESSED")
		default:
			t.AddRowf(d.Name, d.Baseline, d.Current, fmt.Sprintf("%+.1f%%", 100*d.Change), "ok")
		}
	}
	sb.WriteString(t.String())

	// The allocation gate: per-kernel allocs/sample, higher is worse.
	kdeltas := compareKernels(baseline.Kernels, current.Kernels, allocThreshold)
	allocRegressions := 0
	if len(kdeltas) > 0 {
		kt := report.NewTable(fmt.Sprintf("Kernel allocs/sample vs baseline (gate: +%.0f%%; ns informational)", allocThreshold*100),
			"kernel", "base allocs", "cur allocs", "change", "base ns", "cur ns", "status")
		for _, d := range kdeltas {
			switch {
			case d.Missing:
				allocRegressions++
				kt.AddRowf(d.Name, d.Baseline.AllocsPerSample, "—", "—", d.Baseline.NsPerSample, "—", "MISSING")
			case d.New:
				untracked++
				kt.AddRowf(d.Name, "—", d.Current.AllocsPerSample, "—", "—", d.Current.NsPerSample, "new (untracked)")
			case d.Regressed:
				allocRegressions++
				kt.AddRowf(d.Name, d.Baseline.AllocsPerSample, d.Current.AllocsPerSample,
					changeLabel(d.Change), d.Baseline.NsPerSample, d.Current.NsPerSample, "REGRESSED")
			default:
				kt.AddRowf(d.Name, d.Baseline.AllocsPerSample, d.Current.AllocsPerSample,
					changeLabel(d.Change), d.Baseline.NsPerSample, d.Current.NsPerSample, "ok")
			}
		}
		sb.WriteString(kt.String())
	}

	// The latency gate: lower is better, growth past the threshold
	// regresses.
	ldeltas := compareLatency(baseline.Latency, current.Latency, latencyThreshold)
	latencyRegressions := 0
	if len(ldeltas) > 0 {
		lt := report.NewTable(fmt.Sprintf("Latency vs baseline (gate: +%.0f%%)", latencyThreshold*100),
			"metric", "baseline ns", "current ns", "change", "status")
		for _, d := range ldeltas {
			switch {
			case d.Missing:
				latencyRegressions++
				lt.AddRowf(d.Name, d.Baseline, "—", "—", "MISSING")
			case d.New:
				untracked++
				lt.AddRowf(d.Name, "—", d.Current, "—", "new (untracked)")
			case d.Regressed:
				latencyRegressions++
				lt.AddRowf(d.Name, d.Baseline, d.Current, changeLabel(d.Change), "REGRESSED")
			default:
				lt.AddRowf(d.Name, d.Baseline, d.Current, changeLabel(d.Change), "ok")
			}
		}
		sb.WriteString(lt.String())
	}

	// The cache gate: direction per row, taken from the baseline entry.
	cdeltas := compareCache(baseline.DSCache, current.DSCache, cacheThreshold)
	cacheRegressions := 0
	if len(cdeltas) > 0 {
		ct := report.NewTable(fmt.Sprintf("Cache tier vs baseline (gate: ±%.0f%% in each row's bad direction)", cacheThreshold*100),
			"metric", "direction", "baseline", "current", "change", "status")
		for _, d := range cdeltas {
			dir := "lower is better"
			if d.Baseline.HigherIsBetter || (d.New && d.Current.HigherIsBetter) {
				dir = "higher is better"
			}
			switch {
			case d.Missing:
				cacheRegressions++
				ct.AddRowf(d.Name, dir, d.Baseline.Value, "—", "—", "MISSING")
			case d.New:
				untracked++
				ct.AddRowf(d.Name, dir, "—", d.Current.Value, "—", "new (untracked)")
			case d.Regressed:
				cacheRegressions++
				ct.AddRowf(d.Name, dir, d.Baseline.Value, d.Current.Value, changeLabel(d.Change), "REGRESSED")
			default:
				ct.AddRowf(d.Name, dir, d.Baseline.Value, d.Current.Value, changeLabel(d.Change), "ok")
			}
		}
		sb.WriteString(ct.String())
	}

	// The sync gate: same per-row direction machinery as the cache gate,
	// applied to the gradient-sync backend rows.
	sdeltas := compareCache(baseline.Sync, current.Sync, syncThreshold)
	syncRegressions := 0
	if len(sdeltas) > 0 {
		st := report.NewTable(fmt.Sprintf("Gradient-sync backends vs baseline (gate: ±%.0f%% in each row's bad direction)", syncThreshold*100),
			"metric", "direction", "baseline", "current", "change", "status")
		for _, d := range sdeltas {
			dir := "lower is better"
			if d.Baseline.HigherIsBetter || (d.New && d.Current.HigherIsBetter) {
				dir = "higher is better"
			}
			switch {
			case d.Missing:
				syncRegressions++
				st.AddRowf(d.Name, dir, d.Baseline.Value, "—", "—", "MISSING")
			case d.New:
				untracked++
				st.AddRowf(d.Name, dir, "—", d.Current.Value, "—", "new (untracked)")
			case d.Regressed:
				syncRegressions++
				st.AddRowf(d.Name, dir, d.Baseline.Value, d.Current.Value, changeLabel(d.Change), "REGRESSED")
			default:
				st.AddRowf(d.Name, dir, d.Baseline.Value, d.Current.Value, changeLabel(d.Change), "ok")
			}
		}
		sb.WriteString(st.String())
	}

	if untracked > 0 {
		fmt.Fprintf(&sb, "benchdiff: %d new metric(s) not in %s — informational only; regenerate the baseline to start gating them\n",
			untracked, baselinePath)
	}
	if regressions+allocRegressions+latencyRegressions+cacheRegressions+syncRegressions > 0 {
		if regressions > 0 {
			fmt.Fprintf(&sb, "benchdiff: %d tracked throughput metric(s) regressed >%.0f%% vs %s\n",
				regressions, threshold*100, baselinePath)
		}
		if allocRegressions > 0 {
			fmt.Fprintf(&sb, "benchdiff: %d tracked kernel(s) grew allocs/sample >%.0f%% vs %s\n",
				allocRegressions, allocThreshold*100, baselinePath)
		}
		if latencyRegressions > 0 {
			fmt.Fprintf(&sb, "benchdiff: %d tracked latency metric(s) grew >%.0f%% vs %s\n",
				latencyRegressions, latencyThreshold*100, baselinePath)
		}
		if cacheRegressions > 0 {
			fmt.Fprintf(&sb, "benchdiff: %d tracked cache row(s) moved >%.0f%% in their bad direction vs %s\n",
				cacheRegressions, cacheThreshold*100, baselinePath)
		}
		if syncRegressions > 0 {
			fmt.Fprintf(&sb, "benchdiff: %d tracked sync row(s) moved >%.0f%% in their bad direction vs %s\n",
				syncRegressions, syncThreshold*100, baselinePath)
		}
		return 1, sb.String()
	}
	fmt.Fprintf(&sb, "benchdiff: all %d tracked throughput metrics, %d kernels, %d latency metrics, %d cache rows, and %d sync rows within thresholds\n",
		len(deltas)-countNew(deltas), len(kdeltas)-countNewKernels(kdeltas), len(ldeltas)-countNew(ldeltas),
		len(cdeltas)-countNewCache(cdeltas), len(sdeltas)-countNewCache(sdeltas))
	return 0, sb.String()
}

// compareLatency gates every baseline-tracked latency metric: lower is
// better, so a metric regresses when current > baseline × (1 +
// threshold). A non-positive baseline only gates on the current value
// exceeding it. A metric missing from the current report regresses —
// tracked coverage must not silently shrink; metrics only in the
// current report are informational until a regenerated baseline tracks
// them.
func compareLatency(baseline, current map[string]float64, threshold float64) []delta {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]delta, 0, len(names))
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		d := delta{Name: name, Baseline: base, Current: cur}
		switch {
		case !ok:
			d.Missing = true
		case base <= 0:
			d.Regressed = cur > base
		default:
			d.Change = (cur - base) / base
			d.Regressed = cur > base*(1+threshold)
		}
		out = append(out, d)
	}
	fresh := make([]string, 0, 4)
	for name := range current {
		if _, tracked := baseline[name]; !tracked {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		out = append(out, delta{Name: name, Current: current[name], New: true})
	}
	return out
}

func changeLabel(change float64) string { return fmt.Sprintf("%+.1f%%", 100*change) }

func countNew(ds []delta) int {
	n := 0
	for _, d := range ds {
		if d.New {
			n++
		}
	}
	return n
}

func countNewKernels(ds []kernelDelta) int {
	n := 0
	for _, d := range ds {
		if d.New {
			n++
		}
	}
	return n
}

func countNewCache(ds []cacheDelta) int {
	n := 0
	for _, d := range ds {
		if d.New {
			n++
		}
	}
	return n
}

// cacheDelta is one dscache row's comparison.
type cacheDelta struct {
	Name              string
	Baseline, Current cacheRow
	Change            float64 // signed fractional move: (current−baseline)/baseline
	Regressed         bool
	Missing           bool
	New               bool
}

// compareCache gates every baseline-tracked dscache row in the
// direction the baseline declares: a higher-is-better row regresses
// when current < baseline × (1 − threshold); a lower-is-better row
// regresses when current > baseline × (1 + threshold). A non-positive
// baseline can't express a fractional move, so it only gates on the
// current value crossing it. A row missing from the current report
// regresses — tracked coverage must not silently shrink; rows only in
// the current report are informational until a regenerated baseline
// tracks them.
func compareCache(baseline, current map[string]cacheRow, threshold float64) []cacheDelta {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]cacheDelta, 0, len(names))
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		d := cacheDelta{Name: name, Baseline: base, Current: cur}
		switch {
		case !ok:
			d.Missing = true
		case base.Value <= 0:
			if base.HigherIsBetter {
				d.Regressed = cur.Value < base.Value
			} else {
				d.Regressed = cur.Value > base.Value
			}
		default:
			d.Change = (cur.Value - base.Value) / base.Value
			if base.HigherIsBetter {
				d.Regressed = cur.Value < base.Value*(1-threshold)
			} else {
				d.Regressed = cur.Value > base.Value*(1+threshold)
			}
		}
		out = append(out, d)
	}
	fresh := make([]string, 0, 4)
	for name := range current {
		if _, tracked := baseline[name]; !tracked {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		out = append(out, cacheDelta{Name: name, Current: current[name], New: true})
	}
	return out
}

// load reads and schema-checks one report.
func load(path string) (benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return benchFile{}, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return benchFile{}, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(f.Schema, "trainbox-bench/v1") {
		return benchFile{}, fmt.Errorf("%s: schema %q, want trainbox-bench/v1*", path, f.Schema)
	}
	return f, nil
}

// compare gates every baseline-tracked metric: a metric regresses when
// current < baseline × (1 - threshold). Metrics only in the current
// report are informational (New) — they never fail the gate and start
// being tracked once a regenerated baseline includes them;
// higher-is-better is assumed for all throughput.
func compare(baseline, current map[string]float64, threshold float64) []delta {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]delta, 0, len(names))
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		d := delta{Name: name, Baseline: base, Current: cur}
		switch {
		case !ok:
			d.Missing = true
		case base <= 0:
			// A non-positive baseline can't express a fractional drop; only
			// gate on the current value falling below it.
			d.Regressed = cur < base
		default:
			d.Change = (cur - base) / base
			d.Regressed = cur < base*(1-threshold)
		}
		out = append(out, d)
	}
	fresh := make([]string, 0, 4)
	for name := range current {
		if _, tracked := baseline[name]; !tracked {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		out = append(out, delta{Name: name, Current: current[name], New: true})
	}
	return out
}

// kernelDelta is one kernel's allocation comparison.
type kernelDelta struct {
	Name              string
	Baseline, Current kernelStat
	Change            float64 // fractional allocs/sample growth
	Regressed         bool
	Missing           bool
	New               bool
}

// compareKernels gates every baseline-tracked kernel's allocs/sample:
// growth beyond the threshold regresses, and a zero-alloc baseline
// regresses on any allocation at all (cur > 0.5 absorbs AllocsPerRun
// rounding) — zero is an invariant, not a level. A kernel missing from
// the current report regresses: silently dropping a tracked kernel
// must not pass CI. Kernels only in the current report are
// informational until a regenerated baseline tracks them.
func compareKernels(baseline, current map[string]kernelStat, threshold float64) []kernelDelta {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]kernelDelta, 0, len(names))
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		d := kernelDelta{Name: name, Baseline: base, Current: cur}
		switch {
		case !ok:
			d.Missing = true
		case base.AllocsPerSample < 0.5:
			d.Regressed = cur.AllocsPerSample > 0.5
			d.Change = cur.AllocsPerSample - base.AllocsPerSample
		default:
			d.Change = (cur.AllocsPerSample - base.AllocsPerSample) / base.AllocsPerSample
			d.Regressed = cur.AllocsPerSample > base.AllocsPerSample*(1+threshold)
		}
		out = append(out, d)
	}
	fresh := make([]string, 0, 4)
	for name := range current {
		if _, tracked := baseline[name]; !tracked {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		out = append(out, kernelDelta{Name: name, Current: current[name], New: true})
	}
	return out
}
