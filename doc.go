// Package trainbox is a from-scratch Go reproduction of "TrainBox: An
// Extreme-Scale Neural Network Training Server Architecture by
// Systematically Balancing Operations" (Park, Jeong, Kim — MICRO 2020).
//
// The module contains:
//
//   - real data-preparation substrates: a JPEG image pipeline
//     (internal/imgproc) and an STFT/Mel audio front-end (internal/dsp)
//     composed by internal/dataprep, with an FPGA emulator
//     (internal/fpga) proving offload bit-equality;
//   - system models: PCIe trees with max-min-fair contention
//     (internal/pcie), SSDs (internal/storage), host resources
//     (internal/hostres), Ethernet prep-pool (internal/eth), NN
//     accelerators (internal/accel), ring all-reduce — real and
//     analytical (internal/collective) — and a discrete-event engine
//     (internal/sim);
//   - the paper's architectures (internal/arch) and the throughput /
//     bottleneck / requirement solver (internal/core);
//   - a harness (internal/experiments) regenerating every table and
//     figure of the paper's evaluation, exposed through
//     cmd/trainbox-sim, cmd/trainbox-bench, and the benchmarks in
//     bench_test.go.
//
// Start with README.md, DESIGN.md (system inventory and substitutions),
// and EXPERIMENTS.md (paper-vs-measured for every table and figure).
package trainbox
